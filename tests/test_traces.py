"""Unit tests for repro.traces (schema, GDI generator, loader, windows)."""

import numpy as np
import pytest

from repro.sensornet import SensorMessage
from repro.traces import (
    GDITraceConfig,
    Trace,
    TraceRecord,
    generate_gdi_trace,
    load_trace,
    non_empty_windows,
    save_trace,
    trace_from_messages,
    window_trace,
    window_trace_by_samples,
)


class TestTraceRecord:
    def test_message_roundtrip(self):
        record = TraceRecord(sensor_id=2, timestamp=15.0, attributes=(20.0, 70.0))
        message = record.to_message(sequence_number=3)
        assert message.sensor_id == 2
        assert message.sequence_number == 3
        assert TraceRecord.from_message(message) == record


class TestTrace:
    def build(self) -> Trace:
        records = [
            TraceRecord(sensor_id=1, timestamp=10.0, attributes=(1.0, 2.0)),
            TraceRecord(sensor_id=0, timestamp=5.0, attributes=(3.0, 4.0)),
            TraceRecord(sensor_id=0, timestamp=1500.0, attributes=(5.0, 6.0)),
        ]
        return Trace(records=records)

    def test_records_sorted_by_time(self):
        trace = self.build()
        times = [r.timestamp for r in trace.records]
        assert times == sorted(times)

    def test_sensor_ids_and_duration(self):
        trace = self.build()
        assert trace.sensor_ids == [0, 1]
        assert trace.duration_minutes == 1500.0

    def test_between_is_half_open(self):
        trace = self.build()
        subset = trace.between(5.0, 10.0)
        assert len(subset) == 1
        assert subset.records[0].sensor_id == 0

    def test_day_slicing(self):
        trace = self.build()
        day0 = trace.day(0)
        day1 = trace.day(1)
        assert len(day0) == 2
        assert len(day1) == 1

    def test_for_sensor(self):
        assert len(self.build().for_sensor(0)) == 2

    def test_to_messages_has_per_sensor_sequence_numbers(self):
        messages = self.build().to_messages()
        sensor0 = [m for m in messages if m.sensor_id == 0]
        assert [m.sequence_number for m in sensor0] == [0, 1]

    def test_attribute_series(self):
        times, values = self.build().attribute_series(0, 1)
        assert np.allclose(times, [5.0, 1500.0])
        assert np.allclose(values, [4.0, 6.0])

    def test_attribute_series_rejects_bad_index(self):
        with pytest.raises(ValueError):
            self.build().attribute_series(0, 5)


class TestGDIGenerator:
    @pytest.fixture(scope="class")
    def trace(self) -> Trace:
        return generate_gdi_trace(GDITraceConfig(n_days=3, seed=42))

    def test_all_sensors_present(self, trace):
        assert trace.sensor_ids == list(range(10))

    def test_loss_reduces_record_count(self, trace):
        ideal = 10 * 3 * 288  # sensors * days * samples-per-day
        assert len(trace) < ideal
        assert len(trace) > 0.7 * ideal

    def test_metadata_accounts_for_all_packets(self, trace):
        meta = trace.metadata
        total = meta["accepted"] + meta["malformed"] + meta["lost"]
        assert total == 10 * 3 * 288
        assert meta["accepted"] == len(trace)

    def test_values_physically_plausible(self, trace):
        matrix = np.vstack([r.vector for r in trace.records])
        assert matrix[:, 0].min() > -5 and matrix[:, 0].max() < 45
        assert matrix[:, 1].min() >= -2 and matrix[:, 1].max() <= 102

    def test_deterministic_given_seed(self):
        a = generate_gdi_trace(GDITraceConfig(n_days=1, seed=5))
        b = generate_gdi_trace(GDITraceConfig(n_days=1, seed=5))
        assert len(a) == len(b)
        assert np.allclose(a.records[100].vector, b.records[100].vector)

    def test_corruption_stage_applied(self):
        stage = lambda m: m.with_attributes((0.0, 0.0)) if m.sensor_id == 3 else m
        trace = generate_gdi_trace(GDITraceConfig(n_days=1, seed=5), corruption=stage)
        sensor3 = trace.for_sensor(3)
        assert sensor3
        assert all(r.attributes == (0.0, 0.0) for r in sensor3)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            GDITraceConfig(n_days=0)
        with pytest.raises(ValueError):
            GDITraceConfig(n_sensors=0)


class TestLoader:
    def test_roundtrip(self, tmp_path):
        trace = generate_gdi_trace(GDITraceConfig(n_days=1, seed=3))
        path = tmp_path / "trace.csv"
        save_trace(trace, path)
        report = load_trace(path)
        assert report.n_malformed == 0
        assert len(report.trace) == len(trace)
        assert report.trace.attribute_names == trace.attribute_names
        assert np.allclose(
            report.trace.records[10].vector, trace.records[10].vector, atol=1e-5
        )

    def test_malformed_rows_skipped_and_counted(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "sensor_id,timestamp,temperature,humidity\n"
            "0,1.0,20.0,80.0\n"
            "not,a,valid,row\n"
            "1,2.0,21.0\n"
            "-3,2.0,21.0,70.0\n"
            "2,3.0,22.0,75.0\n"
        )
        report = load_trace(path)
        assert report.n_rows == 5
        assert report.n_malformed == 3
        assert len(report.trace) == 2
        assert report.malformed_rate == pytest.approx(0.6)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "hdr.csv"
        path.write_text("a,b,c\n")
        with pytest.raises(ValueError):
            load_trace(path)


class TestWindowing:
    def test_window_trace_by_samples_matches_minutes(self):
        trace = generate_gdi_trace(GDITraceConfig(n_days=1, seed=3))
        by_samples = window_trace_by_samples(trace, 12, 5.0)
        by_minutes = window_trace(trace, 60.0)
        assert len(by_samples) == len(by_minutes)
        assert len(by_samples) == 24

    def test_non_empty_windows_filters_gaps(self):
        messages = [
            SensorMessage(sensor_id=0, timestamp=10.0, attributes=(1.0,)),
            SensorMessage(sensor_id=0, timestamp=200.0, attributes=(1.0,)),
        ]
        windows = window_trace(trace_from_messages(messages, ("x",)), 60.0)
        kept = non_empty_windows(windows)
        assert len(kept) == 2
        assert all(not w.is_empty for w in kept)

    def test_rejects_bad_parameters(self):
        trace = Trace(records=[])
        with pytest.raises(ValueError):
            window_trace(trace, 0.0)
        with pytest.raises(ValueError):
            window_trace_by_samples(trace, 0)
