"""Unit tests for repro.core.clustering (Model State Identification)."""

import numpy as np
import pytest

from repro.core.clustering import OnlineStateClusterer


def clusterer(**kwargs) -> OnlineStateClusterer:
    defaults = dict(
        initial_vectors=[np.array([0.0, 0.0]), np.array([20.0, 0.0])],
        alpha=0.10,
        spawn_threshold=6.0,
        merge_threshold=3.0,
    )
    defaults.update(kwargs)
    return OnlineStateClusterer(**defaults)


class TestConstruction:
    def test_requires_valid_learning_factor(self):
        with pytest.raises(ValueError):
            clusterer(alpha=0.0)
        with pytest.raises(ValueError):
            clusterer(alpha=1.0)

    def test_requires_merge_below_spawn(self):
        with pytest.raises(ValueError):
            clusterer(spawn_threshold=3.0, merge_threshold=3.0)

    def test_requires_initial_states(self):
        with pytest.raises(ValueError):
            OnlineStateClusterer(initial_vectors=[])


class TestAssignment:
    def test_assign_returns_nearest_state_id(self):
        c = clusterer()
        assert c.assign(np.array([1.0, 0.0])) == 0
        assert c.assign(np.array([19.0, 0.0])) == 1


class TestEq6Update:
    def test_state_moves_toward_group_mean(self):
        c = clusterer(alpha=0.5)
        c.update(np.array([[2.0, 0.0], [2.0, 0.0]]))
        # s0 = 0.5 * (0,0) + 0.5 * (2,0) = (1, 0)
        assert np.allclose(c.state_vector(0), [1.0, 0.0])

    def test_unvisited_state_unchanged(self):
        c = clusterer(alpha=0.5)
        c.update(np.array([[2.0, 0.0]]))
        assert np.allclose(c.state_vector(1), [20.0, 0.0])

    def test_visits_incremented_once_per_window(self):
        c = clusterer()
        c.update(np.array([[0.5, 0.0], [0.2, 0.0], [19.0, 0.0]]))
        assert c.states.get(0).visits == 1
        assert c.states.get(1).visits == 1

    def test_empty_update_is_noop(self):
        c = clusterer()
        update = c.update(np.zeros((0, 2)))
        assert update.assignments == []
        assert c.n_states == 2


class TestSpawn:
    def test_far_observation_spawns_state(self):
        c = clusterer()
        update = c.update(np.array([[50.0, 50.0]]))
        assert len(update.spawned) == 1
        assert c.n_states == 3
        spawned = c.states.get(update.spawned[0])
        assert np.allclose(spawned.vector, [50.0, 50.0], atol=5.0)

    def test_near_observation_does_not_spawn(self):
        c = clusterer()
        update = c.update(np.array([[1.0, 1.0]]))
        assert update.spawned == []

    def test_max_states_cap_respected(self):
        c = clusterer(max_states=3)
        c.update(np.array([[50.0, 50.0]]))
        update = c.update(np.array([[-50.0, -50.0]]))
        assert update.spawned == []
        assert c.n_states == 3

    def test_maybe_spawn_far_point(self):
        c = clusterer()
        state_id = c.maybe_spawn(np.array([100.0, 0.0]))
        assert state_id is not None
        assert c.n_states == 3

    def test_maybe_spawn_near_point_returns_none(self):
        c = clusterer()
        assert c.maybe_spawn(np.array([1.0, 0.0])) is None


class TestMerge:
    def test_drifting_states_merge(self):
        c = clusterer(
            initial_vectors=[np.array([0.0, 0.0]), np.array([4.0, 0.0])],
            alpha=0.9,
            spawn_threshold=20.0,
            merge_threshold=3.0,
        )
        # Observations between the two states pull them together.
        update = c.update(np.array([[2.0, 0.0], [2.1, 0.0]]))
        assert update.merged
        assert c.n_states == 1

    def test_assignments_resolved_after_merge(self):
        c = clusterer(
            initial_vectors=[np.array([0.0, 0.0]), np.array([4.0, 0.0])],
            alpha=0.9,
            spawn_threshold=20.0,
            merge_threshold=3.0,
        )
        update = c.update(np.array([[2.0, 0.0], [2.1, 0.0]]))
        # All assignments must reference the surviving state.
        survivor = c.states.state_ids[0]
        assert all(a == survivor for a in update.assignments)

    def test_resolve_follows_merges(self):
        c = clusterer(
            initial_vectors=[np.array([0.0, 0.0]), np.array([4.0, 0.0])],
            alpha=0.9,
            spawn_threshold=20.0,
            merge_threshold=3.0,
        )
        c.update(np.array([[2.0, 0.0], [2.1, 0.0]]))
        assert c.resolve(0) == c.resolve(1)


class TestTracking:
    def test_follows_slowly_moving_environment(self):
        c = OnlineStateClusterer(
            initial_vectors=[np.array([0.0, 0.0])],
            alpha=0.3,
            spawn_threshold=10.0,
            merge_threshold=3.0,
        )
        # Environment drifts from 0 to 5; the single state should follow.
        for step in range(50):
            value = 5.0 * min(step / 25.0, 1.0)
            c.update(np.array([[value, 0.0]] * 3))
        assert np.allclose(c.state_vector(0), [5.0, 0.0], atol=0.5)

    def test_state_labels(self):
        c = clusterer()
        labels = c.state_labels()
        assert labels[0] == "(0,0)"


class TestStateDictValidation:
    def test_round_trip(self):
        c = clusterer()
        c.update(np.array([[1.0, 0.0], [21.0, 0.0]]))
        rebuilt = OnlineStateClusterer.from_state_dict(c.state_dict())
        assert rebuilt.state_dict() == c.state_dict()

    def test_rejects_max_states_below_two(self):
        payload = clusterer().state_dict()
        payload["max_states"] = 1
        with pytest.raises(ValueError, match="max_states=1"):
            OnlineStateClusterer.from_state_dict(payload)

    def test_rejects_disagreeing_centroid_dimensions(self):
        payload = clusterer().state_dict()
        payload["states"]["states"][0]["vector"] = [1.0, 2.0, 3.0]
        with pytest.raises(ValueError, match="disagreeing centroid"):
            OnlineStateClusterer.from_state_dict(payload)

    def test_rejects_more_states_than_max_states(self):
        payload = clusterer().state_dict()
        payload["max_states"] = 2
        payload["states"]["states"].append(
            dict(payload["states"]["states"][0], id=99)
        )
        with pytest.raises(ValueError, match="more than"):
            OnlineStateClusterer.from_state_dict(payload)
