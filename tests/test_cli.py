"""Tests for the repro CLI (python -m repro)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_artefact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "fig99"])

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "nope"])

    def test_defaults(self):
        args = build_parser().parse_args(["reproduce", "fig7"])
        assert args.days == 21
        assert args.seed == 2003


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table6" in out and "stuck_at" in out

    def test_reproduce_table1(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "0.90" in out

    def test_reproduce_fig7_short_run(self, capsys):
        assert main(["reproduce", "fig7", "--days", "7"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "visits" in out

    def test_scenario_stuck_at(self, capsys):
        assert main(["scenario", "stuck_at", "--days", "10"]) == 0
        out = capsys.readouterr().out
        assert "ground truth: {6: 'stuck_at'}" in out
        assert "stuck_at" in out
        assert "M_C states" in out

    def test_scenario_clean_has_no_diagnoses(self, capsys):
        assert main(["scenario", "clean", "--days", "7"]) == 0
        out = capsys.readouterr().out
        assert "per-sensor diagnoses: none" in out
        assert "system verdict: none" in out


class TestCLIReporting:
    def test_scenario_save_writes_json(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        assert main(
            ["scenario", "stuck_at", "--days", "10", "--save", str(path)]
        ) == 0
        capsys.readouterr()
        import json

        document = json.loads(path.read_text())
        assert document["diagnoses"]["6"]["anomaly_type"] == "stuck_at"

    def test_scenario_incident_report(self, capsys):
        assert main(
            ["scenario", "stuck_at", "--days", "10", "--incident-report"]
        ) == 0
        out = capsys.readouterr().out
        assert "Incident report — stuck_at" in out
        assert "recommended action" in out
        assert "replacement" in out
