"""Unit tests for repro.core.pipeline (the Fig. 1 loop) on small
hand-built window streams."""

import numpy as np
import pytest

from repro import DetectionPipeline, PipelineConfig
from repro.sensornet import ObservationWindow, SensorMessage


def window(index, readings, minutes_per_window=60.0):
    """Build a window from {sensor_id: (temp, humidity)}."""
    start = (index - 1) * minutes_per_window
    messages = tuple(
        SensorMessage(
            sensor_id=sid, timestamp=start + 1.0, attributes=tuple(attrs)
        )
        for sid, attrs in sorted(readings.items())
    )
    return ObservationWindow(
        index=index,
        start_minutes=start,
        end_minutes=start + minutes_per_window,
        messages=messages,
    )


def healthy_readings(value=(20.0, 75.0), n_sensors=5):
    return {i: value for i in range(n_sensors)}


class TestBootstrap:
    def test_first_window_bootstraps_states(self):
        pipeline = DetectionPipeline(PipelineConfig())
        pipeline.process_window(window(1, healthy_readings()))
        assert pipeline.clusterer is not None
        assert pipeline.clusterer.n_states >= 1

    def test_explicit_initial_states_used(self):
        initial = [np.array([20.0, 75.0]), np.array([40.0, 30.0])]
        pipeline = DetectionPipeline(PipelineConfig(), initial_states=initial)
        pipeline.process_window(window(1, healthy_readings()))
        assert pipeline.clusterer.n_states == 2

    def test_default_config_constructed_lazily(self):
        pipeline = DetectionPipeline()
        assert pipeline.config.window_samples == 12


class TestWindowProcessing:
    def test_skipped_empty_window(self):
        pipeline = DetectionPipeline()
        result = pipeline.process_window(window(1, {}))
        assert result.skipped
        assert result.observable_state is None
        assert pipeline.n_windows == 1

    def test_healthy_window_has_no_alarms(self):
        pipeline = DetectionPipeline()
        result = pipeline.process_window(window(1, healthy_readings()))
        assert not result.skipped
        assert result.raw_alarms == ()
        assert result.correct_state == result.observable_state

    def test_outlier_sensor_raises_raw_alarm(self):
        pipeline = DetectionPipeline()
        readings = healthy_readings()
        readings[4] = (55.0, 5.0)
        result = pipeline.process_window(window(1, readings))
        assert [a.sensor_id for a in result.raw_alarms] == [4]

    def test_sequences_accumulate(self):
        pipeline = DetectionPipeline()
        for i in range(1, 4):
            pipeline.process_window(window(i, healthy_readings()))
        assert len(pipeline.correct_sequence) == 3
        assert len(pipeline.observable_sequence) == 3

    def test_m_co_updated_per_window(self):
        pipeline = DetectionPipeline()
        for i in range(1, 4):
            pipeline.process_window(window(i, healthy_readings()))
        assert pipeline.m_co.n_updates == 3

    def test_process_windows_batch(self):
        pipeline = DetectionPipeline()
        results = pipeline.process_windows(
            [window(i, healthy_readings()) for i in range(1, 6)]
        )
        assert len(results) == 5


class TestTrackingFlow:
    def run_with_persistent_outlier(self, n_windows=12):
        pipeline = DetectionPipeline()
        for i in range(1, n_windows + 1):
            readings = healthy_readings()
            if i >= 4:
                readings[4] = (55.0, 5.0)
            pipeline.process_window(window(i, readings))
        return pipeline

    def test_persistent_outlier_opens_track(self):
        pipeline = self.run_with_persistent_outlier()
        assert pipeline.tracks.n_tracks == 1
        track = pipeline.track_for(4)
        assert track is not None
        assert track.sensor_id == 4
        # k-of-n with k=3 means the filtered alarm trails the onset.
        assert track.opened_window >= 6

    def test_track_records_stuck_symbol(self):
        pipeline = self.run_with_persistent_outlier()
        track = pipeline.track_for(4)
        symbols = {symbol for _, symbol in track.symbols}
        assert len(symbols) == 1

    def test_recovered_sensor_track_closes(self):
        pipeline = DetectionPipeline()
        for i in range(1, 25):
            readings = healthy_readings()
            if 4 <= i <= 12:
                readings[4] = (55.0, 5.0)
            pipeline.process_window(window(i, readings))
        track = pipeline.track_for(4)
        assert track is not None
        assert not track.is_open
        assert track.closed_window is not None

    def test_diagnose_sensor_without_track_is_none(self):
        pipeline = DetectionPipeline()
        pipeline.process_window(window(1, healthy_readings()))
        assert pipeline.diagnose_sensor(0) is None

    def test_stuck_outlier_diagnosed_stuck_at(self):
        pipeline = self.run_with_persistent_outlier(n_windows=30)
        diagnosis = pipeline.diagnose_sensor(4)
        assert diagnosis is not None
        assert diagnosis.anomaly_type.value == "stuck_at"

    def test_diagnose_all_covers_tracked_sensors(self):
        pipeline = self.run_with_persistent_outlier(n_windows=30)
        diagnoses = pipeline.diagnose_all()
        assert set(diagnoses) == {4}


class TestModels:
    def test_correct_model_requires_windows(self):
        with pytest.raises(ValueError):
            DetectionPipeline().correct_model()

    def test_models_reflect_environment_regimes(self):
        pipeline = DetectionPipeline()
        for i in range(1, 21):
            value = (20.0, 75.0) if (i // 5) % 2 == 0 else (35.0, 45.0)
            pipeline.process_window(window(i, healthy_readings(value)))
        model = pipeline.correct_model(prune=False)
        assert model.n_states == 2

    def test_observable_equals_correct_for_healthy_network(self):
        pipeline = DetectionPipeline()
        for i in range(1, 11):
            pipeline.process_window(window(i, healthy_readings()))
        assert pipeline.correct_sequence == pipeline.observable_sequence

    def test_state_vectors_cover_hmm_ids(self):
        pipeline = DetectionPipeline()
        for i in range(1, 6):
            pipeline.process_window(window(i, healthy_readings()))
        vectors = pipeline.state_vectors()
        for state_id in pipeline.m_co.state_ids:
            assert state_id in vectors
