"""Seed-robustness: the headline classifications hold across seeds.

The reproduction must not be overfitted to the default seed (2003).
Each canonical scenario is re-run with different workload seeds and the
classification outcome asserted; deployments differ (different weather
fronts, different packet-loss patterns, different compromised subsets)
but the structural signatures must persist.
"""

import pytest

from repro.core.classification import AnomalyType
from repro.experiments import (
    deletion_scenario,
    stuck_at_scenario,
)

SEEDS = (101, 777, 31337)


class TestStuckAtAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_stuck_sensor_classified(self, seed):
        run = stuck_at_scenario(n_days=12, seed=seed)
        diagnosis = run.pipeline.diagnose_sensor(6)
        assert diagnosis is not None, f"seed {seed}: sensor never tracked"
        assert diagnosis.anomaly_type is AnomalyType.STUCK_AT, (
            f"seed {seed}: got {diagnosis.anomaly_type}"
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_attack_misattribution(self, seed):
        run = stuck_at_scenario(n_days=12, seed=seed)
        verdict = run.pipeline.system_diagnosis().anomaly_type
        assert verdict is AnomalyType.NONE, f"seed {seed}: got {verdict}"


class TestDeletionAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_attack_classified(self, seed):
        run = deletion_scenario(n_days=14, seed=seed)
        verdict = run.pipeline.system_diagnosis().anomaly_type
        assert verdict is AnomalyType.DYNAMIC_DELETION, (
            f"seed {seed}: got {verdict}"
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_compromised_sensors_tracked(self, seed):
        run = deletion_scenario(n_days=14, seed=seed)
        truth = set(run.campaign.malicious_sensor_ids())
        tracked = {t.sensor_id for t in run.pipeline.tracks.tracks}
        assert truth <= tracked, f"seed {seed}: missed {truth - tracked}"


class TestCleanAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_clean_deployment_stays_clean(self, seed):
        from repro.experiments import clean_scenario

        run = clean_scenario(n_days=10, seed=seed)
        assert run.pipeline.tracks.n_tracks <= 1, f"seed {seed}"
        assert (
            run.pipeline.system_diagnosis().anomaly_type is AnomalyType.NONE
        ), f"seed {seed}"
