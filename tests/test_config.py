"""Unit tests for repro.config (Table 1 configuration)."""

import pytest

from repro import PipelineConfig
from repro.core.filtering import CUSUMFilter, KOfNFilter, SPRTFilter


class TestTable1Defaults:
    def test_paper_values(self):
        config = PipelineConfig()
        assert config.n_sensors == 10
        assert config.n_initial_states == 6
        assert config.window_samples == 12
        assert config.alpha == 0.10
        assert config.beta == 0.90
        assert config.gamma == 0.90

    def test_window_minutes_is_one_hour(self):
        assert PipelineConfig().window_minutes == 60.0

    def test_table1_rows_cover_all_six_parameters(self):
        rows = PipelineConfig().table1_rows()
        symbols = [row[0] for row in rows]
        assert symbols == ["K", "M", "w", "alpha", "beta", "gamma"]

    def test_as_dict_is_numeric(self):
        for value in PipelineConfig().as_dict().values():
            float(value)


class TestValidation:
    def test_rejects_bad_learning_factors(self):
        for name in ("alpha", "beta", "gamma"):
            with pytest.raises(ValueError):
                PipelineConfig(**{name: 0.0})
            with pytest.raises(ValueError):
                PipelineConfig(**{name: 1.0})

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            PipelineConfig(n_sensors=0)
        with pytest.raises(ValueError):
            PipelineConfig(window_samples=0)
        with pytest.raises(ValueError):
            PipelineConfig(sample_period_minutes=0.0)

    def test_rejects_unknown_filter_kind(self):
        with pytest.raises(ValueError):
            PipelineConfig(filter_kind="median")


class TestFilterFactory:
    def test_k_of_n(self):
        factory = PipelineConfig(filter_kind="k_of_n", filter_k=2, filter_n=7)
        filt = factory.filter_factory()()
        assert isinstance(filt, KOfNFilter)
        assert (filt.k, filt.n) == (2, 7)

    def test_sprt(self):
        factory = PipelineConfig(filter_kind="sprt", sprt_p1=0.7)
        filt = factory.filter_factory()()
        assert isinstance(filt, SPRTFilter)
        assert filt.p1 == 0.7

    def test_cusum(self):
        factory = PipelineConfig(filter_kind="cusum", cusum_threshold=3.0)
        filt = factory.filter_factory()()
        assert isinstance(filt, CUSUMFilter)
        assert filt.threshold == 3.0

    def test_factory_builds_independent_instances(self):
        factory = PipelineConfig().filter_factory()
        a, b = factory(), factory()
        a.update(True)
        assert not b.active
