"""Unit tests for repro.hmm.model (the DiscreteHMM container)."""

import numpy as np
import pytest

from repro.hmm import DiscreteHMM


def two_state_model() -> DiscreteHMM:
    return DiscreteHMM(
        transition=[[0.7, 0.3], [0.4, 0.6]],
        emission=[[0.9, 0.1], [0.2, 0.8]],
        initial=[0.6, 0.4],
    )


class TestConstruction:
    def test_valid_model(self):
        model = two_state_model()
        assert model.n_states == 2
        assert model.n_symbols == 2

    def test_rejects_non_square_transition(self):
        with pytest.raises(ValueError):
            DiscreteHMM(
                transition=[[0.5, 0.25, 0.25], [0.5, 0.25, 0.25]],
                emission=[[1.0], [1.0]],
                initial=[0.5, 0.5],
            )

    def test_rejects_state_count_mismatch(self):
        with pytest.raises(ValueError):
            DiscreteHMM(
                transition=np.eye(2),
                emission=np.eye(3),
                initial=[0.5, 0.5],
            )

    def test_rejects_initial_length_mismatch(self):
        with pytest.raises(ValueError):
            DiscreteHMM(
                transition=np.eye(2),
                emission=np.eye(2),
                initial=[1.0],
            )

    def test_rejects_bad_probabilities(self):
        with pytest.raises(Exception):
            DiscreteHMM(
                transition=[[0.7, 0.7], [0.4, 0.6]],
                emission=np.eye(2),
                initial=[0.5, 0.5],
            )

    def test_rejects_wrong_name_lengths(self):
        with pytest.raises(ValueError):
            DiscreteHMM(
                transition=np.eye(2),
                emission=np.eye(2),
                initial=[0.5, 0.5],
                state_names=["only-one"],
            )


class TestFactories:
    def test_uniform(self):
        model = DiscreteHMM.uniform(3, 5)
        assert np.allclose(model.transition, 1.0 / 3.0)
        assert np.allclose(model.emission, 0.2)
        assert np.allclose(model.initial, 1.0 / 3.0)

    def test_random_is_stochastic(self, rng):
        model = DiscreteHMM.random(4, 6, rng)
        assert np.allclose(model.transition.sum(axis=1), 1.0)
        assert np.allclose(model.emission.sum(axis=1), 1.0)
        assert np.isclose(model.initial.sum(), 1.0)

    def test_random_is_seeded(self):
        a = DiscreteHMM.random(3, 3, np.random.default_rng(1))
        b = DiscreteHMM.random(3, 3, np.random.default_rng(1))
        assert np.allclose(a.transition, b.transition)


class TestCopy:
    def test_copy_is_deep(self):
        model = two_state_model()
        clone = model.copy()
        clone.transition[0, 0] = 0.0
        assert model.transition[0, 0] == 0.7


class TestValidateObservations:
    def test_accepts_valid(self):
        model = two_state_model()
        obs = model.validate_observations([0, 1, 1, 0])
        assert obs.dtype == int

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            two_state_model().validate_observations([])

    def test_rejects_out_of_alphabet(self):
        with pytest.raises(ValueError):
            two_state_model().validate_observations([0, 2])

    def test_rejects_negative_symbols(self):
        with pytest.raises(ValueError):
            two_state_model().validate_observations([0, -1])
