"""Durable campaign journal: write-ahead logging and exactly-once resume.

The load-bearing property (ISSUE 6, satellite 4): a journaled campaign
interrupted at *any* task boundary and resumed against the same journal
directory produces final digests bit-identical to an uninterrupted run,
re-executing only the unfinished specs — including when both runs share
one ``TraceCache`` directory.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import runner
from repro.experiments.journal import (
    JOURNAL_FILENAME,
    JOURNAL_VERSION,
    CampaignJournal,
)
from repro.experiments.retry import RetryPolicy
from repro.experiments.runner import (
    ScenarioOutcome,
    ScenarioSpec,
    campaign_spec_key,
    run_campaign,
)
from repro.resilience.chaos import WorkerChaos

SPECS = [
    ScenarioSpec("clean", n_days=1, seed=17),
    ScenarioSpec("stuck_at", n_days=1, seed=17),
    ScenarioSpec("calibration", n_days=1, seed=23),
]
FAST = RetryPolicy(backoff_base=0.0)


def _journal_lines(root):
    return (root / JOURNAL_FILENAME).read_text().splitlines()


class TestJournalFile:
    def test_meta_line_written_once(self, tmp_path):
        with CampaignJournal(tmp_path) as journal:
            journal.record_start("k1", {"kind": "x"}, attempt=1)
        with CampaignJournal(tmp_path) as journal:
            journal.record_start("k1", {"kind": "x"}, attempt=2)
        lines = _journal_lines(tmp_path)
        metas = [l for l in lines if '"meta"' in l]
        assert len(metas) == 1
        assert json.loads(metas[0])["version"] == JOURNAL_VERSION
        assert len(lines) == 3  # meta + two starts, append across reopens

    def test_event_round_trip(self, tmp_path):
        with CampaignJournal(tmp_path) as journal:
            journal.record_start("k1", {"scenario": "clean"}, attempt=1)
            journal.record_retry("k1", attempt=1, kind="timeout", message="slow")
            journal.record_done("k1", {"digest": "abc123", "name": "clean"})
            journal.record_poisoned("k2", error="exception: boom", attempts=3)
        records = list(CampaignJournal(tmp_path).records())
        events = [r["event"] for r in records]
        assert events == ["meta", "start", "retry", "done", "poisoned"]
        assert records[3]["digest"] == "abc123"
        assert records[3]["outcome"] == {"digest": "abc123", "name": "clean"}
        assert records[4] == {
            "event": "poisoned",
            "key": "k2",
            "error": "exception: boom",
            "attempts": 3,
        }

    def test_torn_final_line_is_skipped(self, tmp_path):
        with CampaignJournal(tmp_path) as journal:
            journal.record_done("k1", {"digest": "aa"})
            journal.record_done("k2", {"digest": "bb"})
        path = tmp_path / JOURNAL_FILENAME
        text = path.read_text()
        # Simulate a crash mid-write: chop the last record in half.
        path.write_text(text[: len(text) - 20])
        journal = CampaignJournal(tmp_path)
        assert list(journal.completed_outcomes()) == ["k1"]
        # Appending after the torn line must not weld the fresh record
        # onto the half-record: the writer seals the torn tail with a
        # newline on reopen, so only the torn line itself is lost.
        journal.record_done("k3", {"digest": "cc"})
        journal.close()
        assert set(CampaignJournal(tmp_path).completed_outcomes()) == {
            "k1",
            "k3",
        }

    def test_poisoned_clears_earlier_done(self, tmp_path):
        with CampaignJournal(tmp_path) as journal:
            journal.record_done("k1", {"digest": "aa"})
            journal.record_poisoned("k1", error="exception: x", attempts=2)
        journal = CampaignJournal(tmp_path)
        assert journal.completed_outcomes() == {}
        assert [r["key"] for r in journal.poisoned()] == ["k1"]


class TestResume:
    def test_completed_specs_are_not_reexecuted(self, tmp_path, monkeypatch):
        first = run_campaign(SPECS, n_jobs=1, journal_dir=tmp_path)
        assert first.n_journal_skips == 0

        executed = []
        real = runner._run_scenario_spec

        def counting(spec, cache_dir=None):
            executed.append(spec.name)
            return real(spec, cache_dir)

        monkeypatch.setattr(runner, "_run_scenario_spec", counting)
        second = run_campaign(SPECS, n_jobs=1, journal_dir=tmp_path)
        assert executed == []  # exactly-once: nothing re-ran
        assert second.n_journal_skips == len(SPECS)
        assert second.outcomes == first.outcomes
        assert [o.digest for o in second.outcomes] == [
            o.digest for o in first.outcomes
        ]

    def test_poisoned_specs_rerun_on_resume(self, tmp_path):
        # First run: every attempt raises, all specs quarantined.
        poisoned = run_campaign(
            SPECS,
            n_jobs=1,
            journal_dir=tmp_path,
            chaos=WorkerChaos(exception_probability=1.0),
            policy=RetryPolicy(max_retries=1, backoff_base=0.0),
        )
        assert all(o.quarantined for o in poisoned.outcomes)
        assert len(CampaignJournal(tmp_path).poisoned()) == len(SPECS)
        # Resume without chaos: the quarantined specs get a fresh chance.
        resumed = run_campaign(SPECS, n_jobs=1, journal_dir=tmp_path)
        assert resumed.n_journal_skips == 0
        assert resumed.ok
        assert resumed.outcomes == run_campaign(SPECS, n_jobs=1).outcomes

    def test_malformed_done_outcome_reruns_spec(self, tmp_path):
        run_campaign(SPECS[:1], n_jobs=1, journal_dir=tmp_path)
        key = campaign_spec_key(SPECS[0])
        with CampaignJournal(tmp_path) as journal:
            journal.record_done(key, {"digest": "zz"})  # missing fields
        report = run_campaign(SPECS[:1], n_jobs=1, journal_dir=tmp_path)
        assert report.n_journal_skips == 0
        assert report.outcomes == run_campaign(SPECS[:1], n_jobs=1).outcomes

    def test_stale_keys_do_not_match_other_specs(self, tmp_path):
        run_campaign(SPECS[:1], n_jobs=1, journal_dir=tmp_path)
        other = [ScenarioSpec("clean", n_days=1, seed=99)]
        report = run_campaign(other, n_jobs=1, journal_dir=tmp_path)
        assert report.n_journal_skips == 0  # different seed, different key


class TestPrefixResumeProperty:
    """Satellite 4: resume from any prefix is bit-identical."""

    def test_any_done_prefix_resumes_bit_identically(self, tmp_path):
        cache_dir = tmp_path / "cache"
        full_dir = tmp_path / "full"
        reference = run_campaign(
            SPECS, n_jobs=1, cache_dir=cache_dir, journal_dir=full_dir
        )
        assert reference.ok
        lines = _journal_lines(full_dir)
        meta = lines[0]
        done_lines = [
            line
            for line in lines
            if json.loads(line).get("event") == "done"
        ]
        assert len(done_lines) == len(SPECS)

        for k in range(len(SPECS) + 1):
            # A journal truncated at an arbitrary task boundary: the
            # first k completions survived the crash, the rest did not.
            prefix_dir = tmp_path / f"prefix-{k}"
            prefix_dir.mkdir()
            (prefix_dir / JOURNAL_FILENAME).write_text(
                "\n".join([meta] + done_lines[:k]) + "\n"
            )
            resumed = run_campaign(
                SPECS,
                n_jobs=1,
                cache_dir=cache_dir,
                journal_dir=prefix_dir,
            )
            assert resumed.n_journal_skips == k
            assert resumed.outcomes == reference.outcomes
            assert [o.digest for o in resumed.outcomes] == [
                o.digest for o in reference.outcomes
            ]

    def test_resume_without_cache_matches_cached_run(self, tmp_path):
        # The journal must compose with — not depend on — the cache:
        # replayed outcomes come from the journal, executed ones from a
        # fresh simulation, and the digests agree either way.
        cached = run_campaign(
            SPECS,
            n_jobs=1,
            cache_dir=tmp_path / "cache",
            journal_dir=tmp_path / "journal",
        )
        lines = _journal_lines(tmp_path / "journal")
        prefix_dir = tmp_path / "prefix"
        prefix_dir.mkdir()
        done_lines = [
            line
            for line in lines
            if json.loads(line).get("event") == "done"
        ]
        (prefix_dir / JOURNAL_FILENAME).write_text(
            "\n".join([lines[0]] + done_lines[:1]) + "\n"
        )
        resumed = run_campaign(SPECS, n_jobs=1, journal_dir=prefix_dir)
        assert resumed.n_journal_skips == 1
        assert [o.digest for o in resumed.outcomes] == [
            o.digest for o in cached.outcomes
        ]


class TestInterrupt:
    def test_keyboard_interrupt_flushes_journal(self, tmp_path, monkeypatch):
        reference = run_campaign(SPECS, n_jobs=1)
        real = runner._run_scenario_spec
        calls = []

        def interrupting(spec, cache_dir=None):
            calls.append(spec.name)
            if len(calls) == 2:
                raise KeyboardInterrupt
            return real(spec, cache_dir)

        monkeypatch.setattr(runner, "_run_scenario_spec", interrupting)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(SPECS, n_jobs=1, journal_dir=tmp_path)

        # The completed first spec reached disk before the interrupt.
        journal = CampaignJournal(tmp_path)
        completed = journal.completed_outcomes()
        assert len(completed) == 1
        key = campaign_spec_key(SPECS[0])
        assert ScenarioOutcome.from_json_dict(completed[key]) == (
            reference.outcomes[0]
        )

        # Resume finishes the remainder and matches the clean run.
        monkeypatch.setattr(runner, "_run_scenario_spec", real)
        resumed = run_campaign(SPECS, n_jobs=1, journal_dir=tmp_path)
        assert resumed.n_journal_skips == 1
        assert resumed.outcomes == reference.outcomes

    def test_sigkilled_campaign_resumes_exactly_once(self, tmp_path):
        """Out-of-process SIGKILL: the strongest crash the WAL handles."""
        import os
        import signal
        import subprocess
        import sys
        import textwrap

        journal_dir = tmp_path / "journal"
        script = textwrap.dedent(
            """
            import os, sys
            from repro.experiments import runner
            from repro.experiments.runner import ScenarioSpec, run_campaign

            real = runner._run_scenario_spec

            def lethal(spec, cache_dir=None):
                outcome = real(spec, cache_dir)
                if spec.name == "stuck_at":
                    os.kill(os.getpid(), 9)  # after run, before record_done
                return outcome

            runner._run_scenario_spec = lethal
            run_campaign(
                [
                    ScenarioSpec("clean", n_days=1, seed=17),
                    ScenarioSpec("stuck_at", n_days=1, seed=17),
                    ScenarioSpec("calibration", n_days=1, seed=23),
                ],
                n_jobs=1,
                journal_dir=sys.argv[1],
            )
            """
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(journal_dir)],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL

        # Exactly the pre-crash completion survived; resume runs only
        # the remainder and lands on the clean run's digests.
        assert len(CampaignJournal(journal_dir).completed_outcomes()) == 1
        resumed = run_campaign(SPECS, n_jobs=1, journal_dir=journal_dir)
        assert resumed.n_journal_skips == 1
        assert resumed.outcomes == run_campaign(SPECS, n_jobs=1).outcomes
