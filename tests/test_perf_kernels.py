"""Bit-identity of the vectorized hot kernels vs scalar references.

The vectorisation work (StateSet distance kernels, one-pass clusterer
update, in-place HMM rows, vectorized ``denoised``) promises *exact*
equality with the scalar implementations it replaced — same floats, same
tie-breaks, same spawn/merge decisions.  These tests drive hundreds of
randomized windows through both paths and assert equality with no
tolerance.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.clustering import OnlineStateClusterer
from repro.core.online_hmm import EmissionMatrix, OnlineHMM
from repro.core.states import StateSet


# ---------------------------------------------------------------------------
# Scalar reference implementations (seed-commit semantics)
# ---------------------------------------------------------------------------


class ScalarReferenceClusterer:
    """The pre-vectorisation clusterer, reconstructed per-row.

    Uses ``StateSet._nearest_scalar`` / ``_closest_pair_scalar`` and
    direct vector writes, exactly like the seed commit: spawn checks one
    row at a time, per-row Eq. 3 assignment scans, ``np.vstack``-based
    group means, then the mean-spawn and final per-sensor scans the
    pipeline used to run as separate passes.
    """

    def __init__(self, initial_vectors, alpha, spawn_threshold, merge_threshold,
                 max_states=24):
        self.alpha = alpha
        self.spawn_threshold = spawn_threshold
        self.merge_threshold = merge_threshold
        self.max_states = max_states
        self.states = StateSet(initial_vectors)

    def update(self, observations, overall_mean):
        observations = np.atleast_2d(np.asarray(observations, dtype=float))
        spawned = []
        for row in observations:
            _, distance = self.states._nearest_scalar(row)
            if distance > self.spawn_threshold and len(self.states) < self.max_states:
                spawned.append(self.states.spawn(row).state_id)
        assignments = [
            self.states._nearest_scalar(row)[0].state_id for row in observations
        ]
        groups = {}
        for row, state_id in zip(observations, assignments):
            groups.setdefault(state_id, []).append(row)
        for state_id, members in groups.items():
            state = self.states.get(state_id)
            group_mean = np.mean(np.vstack(members), axis=0)
            state.vector = (
                (1.0 - self.alpha) * state.vector + self.alpha * group_mean
            )
            state.visits += 1
        # Direct vector writes are exactly what the seed did — and exactly
        # what desyncs the vectorized query cache (the reason
        # ``update_vector`` exists).  Drop the cache so ``vectors()``
        # reads the true positions when the test compares sets.
        self.states._invalidate()
        merged = []
        while True:
            pair = self.states._closest_pair_scalar()
            if pair is None or pair[2] >= self.merge_threshold:
                break
            first_id, second_id, _ = pair
            first = self.states.get(first_id)
            second = self.states.get(second_id)
            if first.visits >= second.visits:
                keep, drop = first_id, second_id
            else:
                keep, drop = second_id, first_id
            self.states.merge(keep, drop)
            merged.append((keep, drop))
        # The separate maybe_spawn + identify_window scans of the seed.
        mean_spawned = None
        _, distance = self.states._nearest_scalar(overall_mean)
        if distance > self.spawn_threshold and len(self.states) < self.max_states:
            mean_spawned = self.states.spawn(overall_mean).state_id
        sensor_assignments = [
            self.states._nearest_scalar(row)[0].state_id for row in observations
        ]
        observable_state = self.states._nearest_scalar(overall_mean)[0].state_id
        return {
            "assignments": [self.states.resolve(a) for a in assignments],
            "spawned": spawned,
            "merged": merged,
            "sensor_assignments": sensor_assignments,
            "observable_state": observable_state,
            "mean_spawned": mean_spawned,
        }


def scalar_denoised(snapshot: EmissionMatrix, floor: float) -> np.ndarray:
    """Per-row loop reference for ``EmissionMatrix.denoised``."""
    out = snapshot.matrix.copy()
    for r in range(out.shape[0]):
        row = out[r]
        keep = row >= floor
        if not keep.any():
            keep = row == row.max()
        row[~keep] = 0.0
        out[r] = row / max(row.sum(), 1e-300)
    return out


# ---------------------------------------------------------------------------
# The 300-window equivalence property
# ---------------------------------------------------------------------------


def _random_windows(rng, n_windows=300, n_sensors=8):
    """Randomized windows engineered to exercise spawns, merges and ties."""
    centers = np.array([[0.0, 0.0], [20.0, 10.0], [40.0, -5.0]])
    windows = []
    for index in range(n_windows):
        center = centers[index // 40 % len(centers)]
        rows = center + rng.normal(0.0, 2.0, size=(n_sensors, 2))
        if index % 17 == 0:
            # A far outlier forces a spawn check to fire.
            rows[0] = center + np.array([60.0 + index % 5, 30.0])
        if index % 23 == 0:
            # Integer-lattice rows at the midpoint of two lattice points
            # create exact distance ties between drifting states.
            rows[1] = np.array([10.0, 5.0])
            rows[2] = np.array([10.0, 5.0])
        if index % 40 in (38, 39):
            # Pull everything toward one point so states drift together
            # and the merge loop runs.
            rows = np.array([10.0, 2.0]) + rng.normal(0.0, 0.5, size=(n_sensors, 2))
        windows.append(rows)
    return windows


def _majority(sensor_assignments):
    counts = Counter(sensor_assignments)
    top = max(counts.values())
    return min(s for s, c in counts.items() if c == top)


def test_300_windows_vectorized_matches_scalar_reference():
    rng = np.random.default_rng(404)
    initial = [np.array([0.0, 0.0]), np.array([20.0, 10.0])]
    kwargs = dict(alpha=0.25, spawn_threshold=8.0, merge_threshold=4.0)
    vectorized = OnlineStateClusterer(initial_vectors=initial, **kwargs)
    scalar = ScalarReferenceClusterer(initial_vectors=initial, **kwargs)
    hmm_vec = OnlineHMM()
    hmm_ref = OnlineHMM()

    n_spawns = n_merges = 0
    for window_index, observations in enumerate(_random_windows(rng)):
        overall_mean = observations.mean(axis=0)
        got = vectorized.update(observations, overall_mean=overall_mean)
        want = scalar.update(observations, overall_mean)

        context = f"window {window_index}"
        assert got.assignments == want["assignments"], context
        assert got.spawned == want["spawned"], context
        assert got.merged == want["merged"], context
        assert got.sensor_assignments == want["sensor_assignments"], context
        assert got.observable_state == want["observable_state"], context
        assert got.mean_spawned == want["mean_spawned"], context

        assert vectorized.states.state_ids == scalar.states.state_ids, context
        # Exact float equality: Eq. 6 through the cached matrix performs
        # the same arithmetic as the per-state scalar writes.
        assert np.array_equal(
            vectorized.states.vectors(), scalar.states.vectors()
        ), context

        n_spawns += len(got.spawned) + (got.mean_spawned is not None)
        n_merges += len(got.merged)

        # Feed both paths' (c_i, o_i) into HMMs: identical streams must
        # produce bit-identical B matrices at the end.
        hmm_vec.observe(_majority(got.sensor_assignments), got.observable_state)
        hmm_ref.observe(_majority(want["sensor_assignments"]), want["observable_state"])

    # The workload must actually exercise the structural operations.
    assert n_spawns > 0
    assert n_merges > 0

    b_vec = hmm_vec.emission_matrix()
    b_ref = hmm_ref.emission_matrix()
    assert b_vec.state_ids == b_ref.state_ids
    assert b_vec.symbol_ids == b_ref.symbol_ids
    assert np.array_equal(b_vec.matrix, b_ref.matrix)


# ---------------------------------------------------------------------------
# Kernel-level equivalences
# ---------------------------------------------------------------------------


def test_nearest_and_closest_pair_match_scalar_on_exact_ties():
    # Integer lattice: distances are exact, ties are real float ties.
    states = StateSet([
        np.array([0.0, 0.0]),
        np.array([4.0, 0.0]),
        np.array([0.0, 4.0]),
        np.array([4.0, 4.0]),  # all four pairwise side-distances equal
    ])
    rng = np.random.default_rng(7)
    queries = [np.array([2.0, 0.0]), np.array([2.0, 2.0]), np.array([0.0, 2.0])]
    queries += [rng.integers(-3, 8, size=2).astype(float) for _ in range(200)]
    for point in queries:
        vec_state, vec_distance = states.nearest(point)
        ref_state, ref_distance = states._nearest_scalar(point)
        assert vec_state.state_id == ref_state.state_id, point
        assert vec_distance == ref_distance, point
    assert states.assign_batch(np.vstack(queries)) == [
        states._nearest_scalar(q)[0].state_id for q in queries
    ]
    assert states.closest_pair() == states._closest_pair_scalar()


def test_closest_pair_tie_prefers_lowest_id_pair():
    states = StateSet([
        np.array([0.0, 0.0]),
        np.array([3.0, 0.0]),
        np.array([0.0, 3.0]),
    ])  # pairs (0,1) and (0,2) are both at distance 3
    assert states.closest_pair() == (0, 1, 3.0)
    assert states._closest_pair_scalar() == (0, 1, 3.0)


def test_hmm_inplace_update_matches_textbook_form():
    rng = np.random.default_rng(11)
    pairs = [
        (int(rng.integers(0, 5)), int(rng.integers(0, 7))) for _ in range(2000)
    ]
    hmm = OnlineHMM(transition_innovation=0.1, emission_innovation=0.1)
    for state, symbol in pairs:
        hmm.observe(state, symbol)

    # Scalar shadow using the allocate-a-delta textbook formula over the
    # same growing alphabet.
    shadow = OnlineHMM(transition_innovation=0.1, emission_innovation=0.1)
    prev = None
    for state, symbol in pairs:
        j = shadow._ensure_state(state)
        l = shadow._ensure_symbol(symbol)
        if prev is not None and prev != state:
            i = shadow._state_index[prev]
            delta = np.zeros(shadow._transition.shape[1])
            delta[j] = 1.0
            shadow._transition[i] = 0.9 * shadow._transition[i] + 0.1 * delta
        delta = np.zeros(shadow._emission.shape[1])
        delta[l] = 1.0
        shadow._emission[j] = 0.9 * shadow._emission[j] + 0.1 * delta
        prev = state

    assert np.array_equal(hmm._transition, shadow._transition)
    assert np.array_equal(hmm._emission, shadow._emission)


def test_denoised_matches_scalar_reference():
    rng = np.random.default_rng(3)
    for _ in range(50):
        n_states, n_symbols = rng.integers(1, 7), int(rng.integers(1, 7))
        raw = rng.random((n_states, n_symbols)) ** 3  # many tiny entries
        raw /= raw.sum(axis=1, keepdims=True)
        snapshot = EmissionMatrix(
            matrix=raw,
            state_ids=tuple(range(n_states)),
            symbol_ids=tuple(range(n_symbols)),
        )
        floor = float(rng.choice([0.05, 0.2, 0.5, 0.9]))
        assert np.array_equal(
            snapshot.denoised(floor).matrix, scalar_denoised(snapshot, floor)
        ), (raw, floor)


def test_denoised_starved_row_keeps_largest_entry():
    snapshot = EmissionMatrix(
        matrix=np.array([[0.1, 0.15, 0.75], [0.3, 0.3, 0.4]]),
        state_ids=(0, 1),
        symbol_ids=(0, 1, 2),
    )
    out = snapshot.denoised(0.8)  # every entry of both rows is below 0.8
    assert np.array_equal(out.matrix, [[0.0, 0.0, 1.0], [0.0, 0.0, 1.0]])


# ---------------------------------------------------------------------------
# Shape regressions
# ---------------------------------------------------------------------------


def test_emptied_state_set_reports_zero_by_dim():
    states = StateSet([np.array([1.0, 2.0]), np.array([5.0, 6.0])])
    assert states.vectors().shape == (2, 2)
    states.merge(0, 1)
    assert states.vectors().shape == (1, 2)
    # A never-populated set cannot know d yet: (0, 0) is the only answer.
    assert StateSet().vectors().shape == (0, 0)


def test_distances_to_empty_set_is_n_by_zero():
    states = StateSet()
    distances, ids = states.distances_to(np.zeros((3, 2)))
    assert distances.shape == (3, 0)
    assert ids == []


def test_update_vector_keeps_cache_coherent():
    states = StateSet([np.array([0.0, 0.0]), np.array([10.0, 0.0])])
    states.vectors()  # force the cache
    states.update_vector(0, np.array([9.0, 0.0]))
    state, distance = states.nearest(np.array([9.5, 0.0]))
    assert state.state_id == 0
    assert distance == 0.5
    assert np.array_equal(states.vectors()[0], [9.0, 0.0])


def test_assign_batch_empty_set_raises():
    with pytest.raises(ValueError, match="empty"):
        StateSet().assign_batch(np.zeros((2, 2)))
