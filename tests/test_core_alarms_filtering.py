"""Unit tests for repro.core.alarms and repro.core.filtering."""

import numpy as np
import pytest

from repro.core.alarms import AlarmGenerator
from repro.core.clustering import OnlineStateClusterer
from repro.core.filtering import (
    CUSUMFilter,
    FilterBank,
    KOfNFilter,
    SPRTFilter,
)
from repro.core.identification import identify_window


def identification(sensor_states, correct):
    """Build a WindowIdentification-like via the real path."""
    clusterer = OnlineStateClusterer(
        initial_vectors=[np.array([0.0, 0.0]), np.array([20.0, 0.0])],
        alpha=0.1,
        spawn_threshold=8.0,
        merge_threshold=3.0,
    )
    per_sensor = {
        sid: np.array([0.0, 0.0]) if state == 0 else np.array([20.0, 0.0])
        for sid, state in sensor_states.items()
    }
    majority_vec = np.array([0.0, 0.0]) if correct == 0 else np.array([20.0, 0.0])
    return identify_window(clusterer, per_sensor, overall_mean=majority_vec)


class TestAlarmGenerator:
    def test_alarm_fires_on_disagreement(self):
        gen = AlarmGenerator()
        ident = identification({0: 0, 1: 0, 2: 1}, correct=0)
        alarms = gen.process(1, ident)
        assert len(alarms) == 1
        assert alarms[0].sensor_id == 2
        assert alarms[0].sensor_state == 1
        assert alarms[0].correct_state == 0

    def test_history_covers_all_reporting_sensors(self):
        gen = AlarmGenerator()
        gen.process(1, identification({0: 0, 1: 1}, correct=0))
        assert gen.alarm_series(0) == [False]
        assert gen.alarm_series(1) == [True]

    def test_alarm_rate(self):
        gen = AlarmGenerator()
        gen.process(1, identification({0: 0, 1: 1}, correct=0))
        gen.process(2, identification({0: 0, 1: 0}, correct=0))
        assert gen.alarm_rate(1) == pytest.approx(0.5)
        assert gen.alarm_rate(0) == 0.0

    def test_unknown_sensor_rate_is_zero(self):
        assert AlarmGenerator().alarm_rate(99) == 0.0

    def test_sensors_seen(self):
        gen = AlarmGenerator()
        gen.process(1, identification({3: 0, 7: 0}, correct=0))
        assert gen.sensors_seen() == {3, 7}


class TestKOfNFilter:
    def test_fires_after_k_raw_alarms(self):
        filt = KOfNFilter(k=3, n=5)
        assert not filt.update(True)
        assert not filt.update(True)
        assert filt.update(True)

    def test_window_slides(self):
        filt = KOfNFilter(k=2, n=3)
        filt.update(True)
        filt.update(True)
        assert filt.active
        filt.update(False)
        assert filt.active  # still 2 of last 3
        filt.update(False)
        assert not filt.active  # only 1 of last 3

    def test_reset(self):
        filt = KOfNFilter(k=1, n=2)
        filt.update(True)
        filt.reset()
        assert not filt.active

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            KOfNFilter(k=0, n=3)
        with pytest.raises(ValueError):
            KOfNFilter(k=4, n=3)


class TestSPRTFilter:
    def test_consecutive_alarms_accept_h1(self):
        filt = SPRTFilter(p0=0.02, p1=0.65)
        fired = [filt.update(True) for _ in range(10)]
        assert any(fired)

    def test_quiet_stream_stays_clear(self):
        filt = SPRTFilter()
        assert not any(filt.update(False) for _ in range(100))

    def test_clears_after_quiet_period(self):
        filt = SPRTFilter()
        for _ in range(10):
            filt.update(True)
        assert filt.active
        for _ in range(200):
            filt.update(False)
        assert not filt.active

    def test_thresholds_ordering(self):
        filt = SPRTFilter()
        assert filt.lower_threshold < 0 < filt.upper_threshold

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SPRTFilter(p0=0.5, p1=0.2)
        with pytest.raises(ValueError):
            SPRTFilter(alpha=0.0)


class TestCUSUMFilter:
    def test_sustained_alarms_trip_threshold(self):
        filt = CUSUMFilter(drift=0.25, threshold=2.0)
        fired = [filt.update(True) for _ in range(5)]
        assert fired[-1]

    def test_sparse_alarms_do_not_trip(self):
        filt = CUSUMFilter(drift=0.25, threshold=2.0)
        pattern = [True] + [False] * 9
        assert not any(filt.update(x) for x in pattern * 5)

    def test_clears_when_statistic_returns_to_zero(self):
        filt = CUSUMFilter(drift=0.25, threshold=2.0)
        for _ in range(10):
            filt.update(True)
        assert filt.active
        for _ in range(50):
            filt.update(False)
        assert not filt.active

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CUSUMFilter(drift=0.0)
        with pytest.raises(ValueError):
            CUSUMFilter(threshold=0.0)


class TestFilterBank:
    def test_lazily_creates_per_sensor_filters(self):
        bank = FilterBank(factory=lambda: KOfNFilter(k=1, n=1))
        bank.update(1, {0: True, 1: False})
        assert bank.is_active(0)
        assert not bank.is_active(1)
        assert not bank.is_active(99)

    def test_transitions_reported_on_change_only(self):
        bank = FilterBank(factory=lambda: KOfNFilter(k=1, n=1))
        first = bank.update(1, {0: True})
        second = bank.update(2, {0: True})
        third = bank.update(3, {0: False})
        assert [t.raised for t in first] == [True]
        assert second == []
        assert [t.raised for t in third] == [False]

    def test_active_sensors_sorted(self):
        bank = FilterBank(factory=lambda: KOfNFilter(k=1, n=1))
        bank.update(1, {5: True, 2: True, 7: False})
        assert bank.active_sensors() == [2, 5]
