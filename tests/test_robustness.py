"""Robustness and failure-injection tests.

These exercise the conditions a real deployment throws at the pipeline:
heavy packet loss, dying motes, total outages (empty windows), silent
sensors, and *concurrent* anomalies — including the documented
limitation that a system-level attack verdict dominates the diagnosis
of concurrently faulty sensors (the Fig. 5 flow checks attacks first).
"""

import numpy as np
import pytest

from repro import DetectionPipeline, PipelineConfig
from repro.core.classification import AnomalyType
from repro.faults import (
    ActivationSchedule,
    AdditiveFault,
    CampaignSpec,
    DynamicDeletionAttack,
    PacketDropper,
    StuckAtFault,
)
from repro.sensornet import (
    BatteryModel,
    CollectorNode,
    GDIDiurnalEnvironment,
    Mote,
    NetworkSimulator,
    StarNetwork,
)
from repro.traces import (
    GDITraceConfig,
    build_environment,
    generate_gdi_trace,
    window_trace_by_samples,
)

ONSET = ActivationSchedule(start_minutes=2 * 24 * 60.0)


def run_trace(trace, config=None):
    config = config or PipelineConfig()
    pipeline = DetectionPipeline(config)
    for window in window_trace_by_samples(trace, config.window_samples):
        pipeline.process_window(window)
    return pipeline


class TestHeavyPacketLoss:
    def test_clean_run_survives_fifty_percent_loss(self):
        trace = generate_gdi_trace(
            GDITraceConfig(n_days=7, loss_probability=0.5, seed=11)
        )
        pipeline = run_trace(trace)
        assert pipeline.tracks.n_tracks <= 1  # at most one spurious track
        assert (
            pipeline.system_diagnosis().anomaly_type is AnomalyType.NONE
        )

    def test_stuck_sensor_still_detected_under_loss(self):
        cfg = GDITraceConfig(n_days=10, loss_probability=0.4, seed=11)
        campaign = CampaignSpec().plant(
            StuckAtFault(value=(15.0, 1.0)), [6], ONSET
        )
        trace = generate_gdi_trace(
            cfg, corruption=campaign.build_injector(build_environment(cfg))
        )
        pipeline = run_trace(trace)
        assert 6 in {t.sensor_id for t in pipeline.tracks.tracks}


class TestDyingMotes:
    def test_battery_death_shrinks_population_gracefully(self):
        env = GDIDiurnalEnvironment(n_days=5, seed=3)
        motes = []
        for i in range(8):
            battery = None
            if i < 2:  # two motes die about half-way through
                battery = BatteryModel(
                    initial_charge=1.0,
                    drain_per_sample=1.0 / (2.5 * 288),
                    shutdown_threshold=0.01,
                )
            motes.append(
                Mote(sensor_id=i, environment=env, noise_std=0.35,
                     battery=battery, seed=3)
            )
        config = PipelineConfig()
        pipeline = DetectionPipeline(config)
        collector = CollectorNode(window_minutes=config.window_minutes)
        simulator = NetworkSimulator(
            environment=env, motes=motes, collector=collector,
            network=StarNetwork.homogeneous(range(8), seed=3),
        )
        simulator.run(5 * 24 * 60.0, on_window=pipeline.process_window)
        # Dead motes simply stop reporting; no diagnosis is invented for
        # them (silent death is an arrival-rate problem, out of the
        # paper's §3.3 scope).
        diagnoses = pipeline.diagnose_all()
        assert all(
            d.anomaly_type in (AnomalyType.NONE, AnomalyType.UNKNOWN_ERROR)
            for d in diagnoses.values()
        )


class TestOutages:
    def test_total_outage_produces_skipped_windows(self):
        trace = generate_gdi_trace(GDITraceConfig(n_days=4, seed=5))
        # Drop everything in day 2: a base-station outage.
        kept = [
            r for r in trace.records
            if not (1 * 1440.0 <= r.timestamp < 2 * 1440.0)
        ]
        trace.records = kept
        pipeline = run_trace(trace)
        skipped = [r for r in pipeline.results if r.skipped]
        assert len(skipped) == 24
        assert pipeline.system_diagnosis().anomaly_type is AnomalyType.NONE

    def test_pipeline_resumes_after_outage(self):
        trace = generate_gdi_trace(GDITraceConfig(n_days=4, seed=5))
        trace.records = [
            r for r in trace.records
            if not (1 * 1440.0 <= r.timestamp < 2 * 1440.0)
        ]
        pipeline = run_trace(trace)
        processed = [r for r in pipeline.results if not r.skipped]
        assert len(processed) == 3 * 24
        assert pipeline.correct_model().n_states >= 3


class TestSilentSensor:
    def test_suppressed_sensor_never_alarmed(self):
        cfg = GDITraceConfig(n_days=5, seed=7)
        env = build_environment(cfg)

        def mute_sensor_3(message):
            return None if message.sensor_id == 3 else message

        trace = generate_gdi_trace(cfg, corruption=mute_sensor_3)
        pipeline = run_trace(trace)
        assert 3 not in pipeline.alarm_generator.sensors_seen()
        assert 3 not in {t.sensor_id for t in pipeline.tracks.tracks}


class TestConcurrentAnomalies:
    @pytest.fixture(scope="class")
    def fault_plus_attack(self):
        cfg = GDITraceConfig(n_days=14)
        env = build_environment(cfg)
        campaign = CampaignSpec()
        campaign.plant(
            PacketDropper(StuckAtFault(value=(15.0, 1.0)), drop_probability=0.5),
            [6],
            ONSET,
        )
        campaign.plant(
            DynamicDeletionAttack(
                deleted_state=(31.0, 57.0),
                hold_state=(23.0, 72.0),
                radius=10.0,
                fraction=0.3,
            ),
            [1, 2, 3],
        )
        trace = generate_gdi_trace(cfg, corruption=campaign.build_injector(env))
        return run_trace(trace), campaign

    def test_attack_detected_at_system_level(self, fault_plus_attack):
        pipeline, _ = fault_plus_attack
        assert (
            pipeline.system_diagnosis().anomaly_type
            is AnomalyType.DYNAMIC_DELETION
        )

    def test_all_anomalous_sensors_tracked(self, fault_plus_attack):
        pipeline, _ = fault_plus_attack
        tracked = {t.sensor_id for t in pipeline.tracks.tracks}
        assert {1, 2, 3, 6} <= tracked

    def test_attack_verdict_dominates_concurrent_fault(self, fault_plus_attack):
        # Documented limitation (Fig. 5 checks the attack branch first):
        # with a live system-level attack, the concurrently stuck sensor
        # is attributed to the attack too.
        pipeline, _ = fault_plus_attack
        diagnosis = pipeline.diagnose_sensor(6)
        assert diagnosis is not None
        assert diagnosis.anomaly_type is AnomalyType.DYNAMIC_DELETION

    def test_two_concurrent_faults(self):
        cfg = GDITraceConfig(n_days=14)
        env = build_environment(cfg)
        campaign = CampaignSpec()
        campaign.plant(
            PacketDropper(StuckAtFault(value=(15.0, 1.0)), drop_probability=0.5),
            [6],
            ONSET,
        )
        campaign.plant(AdditiveFault(offsets=(6.0, 12.0)), [3], ONSET)
        trace = generate_gdi_trace(cfg, corruption=campaign.build_injector(env))
        pipeline = run_trace(trace)
        # The stuck sensor classifies cleanly even with a second faulty
        # sensor present; the additive one may degrade to unknown under
        # the perturbed state set (documented partial result).
        assert pipeline.diagnose_sensor(6).anomaly_type is AnomalyType.STUCK_AT
        d3 = pipeline.diagnose_sensor(3)
        assert d3 is not None
        assert d3.anomaly_type in (
            AnomalyType.ADDITIVE,
            AnomalyType.UNKNOWN_ERROR,
        )
        assert (
            pipeline.system_diagnosis().anomaly_type is AnomalyType.NONE
        )


class TestRecovery:
    def test_healed_fault_closes_track_and_still_classifies(self):
        cfg = GDITraceConfig(n_days=12, seed=9)
        env = build_environment(cfg)
        campaign = CampaignSpec().plant(
            PacketDropper(StuckAtFault(value=(15.0, 1.0)), drop_probability=0.5),
            [6],
            ActivationSchedule(
                start_minutes=2 * 24 * 60.0, end_minutes=7 * 24 * 60.0
            ),
        )
        trace = generate_gdi_trace(cfg, corruption=campaign.build_injector(env))
        pipeline = run_trace(trace)
        track = pipeline.track_for(6)
        assert track is not None
        assert not track.is_open  # the alarm cleared after healing
        diagnosis = pipeline.diagnose_sensor(6)
        assert diagnosis.anomaly_type is AnomalyType.STUCK_AT
