"""Unit tests for repro.core.states (ModelState and StateSet)."""

import numpy as np
import pytest

from repro.core.states import BOTTOM_STATE_ID, ModelState, StateSet


class TestModelState:
    def test_distance(self):
        state = ModelState(state_id=0, vector=np.array([3.0, 4.0]))
        assert state.distance_to(np.array([0.0, 0.0])) == pytest.approx(5.0)

    def test_label_format(self):
        state = ModelState(state_id=0, vector=np.array([12.4, 93.6]))
        assert state.label() == "(12,94)"

    def test_vector_is_copied(self):
        source = np.array([1.0, 2.0])
        state = ModelState(state_id=0, vector=source)
        source[0] = 99.0
        assert state.vector[0] == 1.0

    def test_rejects_empty_vector(self):
        with pytest.raises(ValueError):
            ModelState(state_id=0, vector=np.array([]))

    def test_bottom_sentinel_is_negative(self):
        assert BOTTOM_STATE_ID < 0


class TestStateSet:
    def test_spawn_assigns_fresh_ids(self):
        states = StateSet()
        a = states.spawn(np.array([1.0, 1.0]))
        b = states.spawn(np.array([2.0, 2.0]))
        assert a.state_id != b.state_id
        assert len(states) == 2

    def test_initial_vectors(self):
        states = StateSet([np.array([1.0]), np.array([2.0])])
        assert len(states) == 2
        assert states.state_ids == [0, 1]

    def test_nearest(self):
        states = StateSet([np.array([0.0, 0.0]), np.array([10.0, 0.0])])
        nearest, distance = states.nearest(np.array([7.0, 0.0]))
        assert nearest.state_id == 1
        assert distance == pytest.approx(3.0)

    def test_nearest_on_empty_raises(self):
        with pytest.raises(ValueError):
            StateSet().nearest(np.array([0.0]))

    def test_merge_aliases_dropped_id(self):
        states = StateSet([np.array([0.0]), np.array([1.0])])
        states.merge(keep_id=0, drop_id=1)
        assert len(states) == 1
        assert states.resolve(1) == 0
        assert states.get(1).state_id == 0

    def test_merge_weights_by_visits(self):
        states = StateSet([np.array([0.0]), np.array([10.0])])
        states.get(0).visits = 3
        states.get(1).visits = 1
        merged = states.merge(0, 1)
        assert merged.vector[0] == pytest.approx(2.5)
        assert merged.visits == 4

    def test_merge_is_idempotent_on_same_id(self):
        states = StateSet([np.array([0.0])])
        merged = states.merge(0, 0)
        assert merged.state_id == 0
        assert len(states) == 1

    def test_alias_chains_resolve(self):
        states = StateSet([np.array([0.0]), np.array([1.0]), np.array([2.0])])
        states.merge(1, 2)
        states.merge(0, 1)
        assert states.resolve(2) == 0

    def test_spawned_after_merge_gets_new_id(self):
        states = StateSet([np.array([0.0]), np.array([1.0])])
        states.merge(0, 1)
        fresh = states.spawn(np.array([5.0]))
        assert fresh.state_id == 2

    def test_closest_pair(self):
        states = StateSet(
            [np.array([0.0]), np.array([1.0]), np.array([10.0])]
        )
        pair = states.closest_pair()
        assert pair is not None
        assert set(pair[:2]) == {0, 1}
        assert pair[2] == pytest.approx(1.0)

    def test_closest_pair_needs_two_states(self):
        assert StateSet([np.array([0.0])]).closest_pair() is None

    def test_vectors_matrix(self):
        states = StateSet([np.array([1.0, 2.0]), np.array([3.0, 4.0])])
        assert states.vectors().shape == (2, 2)

    def test_contains_follows_aliases(self):
        states = StateSet([np.array([0.0]), np.array([1.0])])
        states.merge(0, 1)
        assert 1 in states

    def test_labels(self):
        states = StateSet([np.array([12.0, 94.0])])
        assert states.labels() == {0: "(12,94)"}
