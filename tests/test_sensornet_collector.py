"""Unit tests for repro.sensornet.collector (Eq. 1 windowing)."""

import numpy as np
import pytest

from repro.sensornet import (
    CollectorNode,
    DeliveryRecord,
    MalformedMessage,
    ObservationWindow,
    SensorMessage,
    windows_from_messages,
)


def msg(sensor_id: int, t: float, attrs=(1.0, 2.0)) -> SensorMessage:
    return SensorMessage(sensor_id=sensor_id, timestamp=t, attributes=attrs)


class TestCollectorNode:
    def test_windows_partition_by_time(self):
        collector = CollectorNode(window_minutes=60.0)
        for t in (0.0, 30.0, 59.9, 60.0, 100.0):
            collector.receive_message(msg(0, t))
        windows = collector.pop_completed_windows(120.0)
        assert len(windows) == 2
        assert len(windows[0].messages) == 3
        assert len(windows[1].messages) == 2

    def test_windows_emitted_in_order_with_gaps(self):
        collector = CollectorNode(window_minutes=10.0)
        collector.receive_message(msg(0, 25.0))
        windows = collector.pop_completed_windows(30.0)
        assert [w.index for w in windows] == [1, 2, 3]
        assert windows[0].is_empty and windows[1].is_empty
        assert not windows[2].is_empty

    def test_incomplete_window_not_emitted(self):
        collector = CollectorNode(window_minutes=60.0)
        collector.receive_message(msg(0, 10.0))
        assert collector.pop_completed_windows(59.0) == []

    def test_flush_emits_partial_window(self):
        collector = CollectorNode(window_minutes=60.0)
        collector.receive_message(msg(0, 10.0))
        window = collector.flush()
        assert window is not None
        assert len(window.messages) == 1
        assert collector.flush() is None

    def test_stats_track_delivery_outcomes(self):
        collector = CollectorNode()
        collector.receive(DeliveryRecord(message=msg(0, 0.0)))
        collector.receive(DeliveryRecord(lost=True))
        collector.receive(
            DeliveryRecord(malformed=MalformedMessage(sensor_id=0, timestamp=0.0))
        )
        assert collector.stats.accepted == 1
        assert collector.stats.lost == 1
        assert collector.stats.malformed == 1
        assert collector.stats.attempted == 3
        assert np.isclose(collector.stats.acceptance_rate, 1.0 / 3.0)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            CollectorNode(window_minutes=0.0)


class TestObservationWindow:
    def window(self) -> ObservationWindow:
        return ObservationWindow(
            index=1,
            start_minutes=0.0,
            end_minutes=60.0,
            messages=(
                msg(0, 1.0, (10.0, 90.0)),
                msg(0, 6.0, (12.0, 88.0)),
                msg(1, 2.0, (20.0, 70.0)),
            ),
        )

    def test_observations_matrix(self):
        window = self.window()
        assert window.observations.shape == (3, 2)
        assert window.sensor_ids == [0, 0, 1]

    def test_per_sensor_mean_averages_repeats(self):
        means = self.window().per_sensor_mean()
        assert np.allclose(means[0], [11.0, 89.0])
        assert np.allclose(means[1], [20.0, 70.0])

    def test_overall_mean_weights_by_delivered_readings(self):
        # Sensor 0 delivered two readings; it gets twice the weight.
        mean = self.window().overall_mean()
        assert np.allclose(mean, [(10 + 12 + 20) / 3.0, (90 + 88 + 70) / 3.0])

    def test_empty_window(self):
        window = ObservationWindow(
            index=1, start_minutes=0.0, end_minutes=60.0, messages=()
        )
        assert window.is_empty
        assert window.per_sensor_mean() == {}
        with pytest.raises(ValueError):
            window.overall_mean()


class TestWindowsFromMessages:
    def test_batch_windowing_covers_all_messages(self):
        messages = [msg(i % 3, float(t)) for i, t in enumerate(range(0, 300, 7))]
        windows = windows_from_messages(messages, window_minutes=60.0)
        total = sum(len(w.messages) for w in windows)
        assert total == len(messages)

    def test_batch_windowing_indices_consecutive(self):
        messages = [msg(0, 10.0), msg(0, 200.0)]
        windows = windows_from_messages(messages, window_minutes=60.0)
        assert [w.index for w in windows] == list(
            range(1, len(windows) + 1)
        )
