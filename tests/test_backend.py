"""Kernel-backend registry: selection, fallback, and bit-identity.

The compiled tier is strictly optional — ``backend="compiled"`` must
work (numpy flavor, one warning) on an interpreter without numba, and
whichever flavor actually runs must be bit-identical to the reference
kernels: digests, checkpoints, and per-window results never depend on
the backend choice.
"""

import warnings

import numpy as np
import pytest

import repro.backend as backend_module
from repro import DetectionPipeline, PipelineConfig
from repro.backend import (
    BackendFallbackWarning,
    UnknownBackendError,
    get_backend,
    numba_available,
)
from repro.resilience.checkpoint import restore, snapshot
from repro.traces import GDITraceConfig, generate_gdi_trace_columnar


def _fresh_compiled_resolution(monkeypatch):
    """Reset the registry's memoization so 'compiled' resolves anew."""
    monkeypatch.setattr(backend_module, "_FALLBACK_WARNED", False)
    monkeypatch.delitem(backend_module._CACHE, "compiled", raising=False)


class TestRegistry:
    def test_unknown_backend_is_a_structured_error(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("bogus")
        assert excinfo.value.backend == "bogus"
        assert excinfo.value.available == ("numpy", "compiled")
        assert "bogus" in str(excinfo.value)

    def test_unknown_backend_rejected_at_config_time(self):
        with pytest.raises(UnknownBackendError):
            PipelineConfig(backend="bogus")

    def test_numpy_backend_resolves(self):
        backend = get_backend("numpy")
        assert backend.name == "numpy"
        assert backend.flavor == "numpy"

    @pytest.mark.skipif(
        numba_available(), reason="fallback only happens without numba"
    )
    def test_compiled_without_numba_warns_once(self, monkeypatch):
        _fresh_compiled_resolution(monkeypatch)
        with pytest.warns(BackendFallbackWarning):
            first = get_backend("compiled")
        assert first.name == "compiled"
        assert first.flavor == "numpy"
        # Memoized second resolution: same object, no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert get_backend("compiled") is first

    @pytest.mark.skipif(
        not numba_available(), reason="needs a real numba install"
    )
    def test_compiled_with_numba_is_silent(self, monkeypatch):
        _fresh_compiled_resolution(monkeypatch)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            backend = get_backend("compiled")
        assert backend.name == "compiled"
        assert backend.flavor == "numba"


def _run(config: PipelineConfig, trace) -> DetectionPipeline:
    pipeline = DetectionPipeline(config)
    pipeline.process_trace_fast(trace)
    return pipeline


@pytest.fixture(scope="module")
def short_trace():
    return generate_gdi_trace_columnar(GDITraceConfig(n_days=1, seed=13))


class TestBitIdentity:
    def test_digest_identical_across_backends(self, short_trace):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", BackendFallbackWarning)
            compiled = _run(PipelineConfig(backend="compiled"), short_trace)
        reference = _run(PipelineConfig(backend="numpy"), short_trace)
        assert reference.digest() == compiled.digest()

    def test_digest_metadata_records_backend(self, short_trace):
        reference = _run(PipelineConfig(backend="numpy"), short_trace)
        meta = reference.digest_metadata()
        assert meta["digest"] == reference.digest()
        assert meta["backend"] == "numpy"
        assert meta["backend_flavor"] == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", BackendFallbackWarning)
            compiled = _run(PipelineConfig(backend="compiled"), short_trace)
        meta = compiled.digest_metadata()
        assert meta["backend"] == "compiled"
        assert meta["backend_flavor"] in ("numpy", "numba")
        # The digest hash payload itself must not mention the backend.
        assert meta["digest"] == reference.digest()

    def test_checkpoint_restores_bit_identical_across_backends(
        self, short_trace
    ):
        """A checkpoint written under one backend resumes under the other."""
        from repro.traces.windows import window_trace_columnar

        config = PipelineConfig()
        windows = window_trace_columnar(short_trace, config.window_minutes)
        half = len(windows) // 2

        writer = DetectionPipeline(config)
        for window in windows[:half]:
            writer.process_window(window)
        payload = snapshot(writer)

        finish = {}
        for backend in ("numpy", "compiled"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", BackendFallbackWarning)
                resumed = restore(
                    dict(payload), config=PipelineConfig(backend=backend)
                )
            for window in windows[half:]:
                resumed.process_window(window)
            finish[backend] = resumed.digest()
        assert finish["numpy"] == finish["compiled"]


class TestScratchIsolation:
    def test_interleaved_pipelines_do_not_share_scratch(self):
        """Two engines advanced window-by-window own distinct scratch.

        Reusable kernel scratch is per-instance; interleaving two
        pipelines must produce exactly the digests of two solo runs.
        """
        from repro.traces.windows import window_trace_columnar

        config = PipelineConfig()
        traces = [
            generate_gdi_trace_columnar(GDITraceConfig(n_days=1, seed=s))
            for s in (5, 6)
        ]
        window_lists = [
            window_trace_columnar(trace, config.window_minutes)
            for trace in traces
        ]

        solo = []
        for windows in window_lists:
            pipeline = DetectionPipeline(PipelineConfig())
            for window in windows:
                pipeline.process_windows_fast([window])
            solo.append(pipeline.digest())

        first = DetectionPipeline(PipelineConfig())
        second = DetectionPipeline(PipelineConfig())
        assert first._kernel_scratch is not second._kernel_scratch
        for a, b in zip(*window_lists):
            first.process_windows_fast([a])
            second.process_windows_fast([b])
        assert [first.digest(), second.digest()] == solo

    def test_stateset_scratch_is_per_instance(self):
        from repro.core.states import StateSet

        first = StateSet([np.array([0.0, 0.0]), np.array([5.0, 5.0])])
        second = StateSet([np.array([1.0, 1.0])])
        assert first._distance_scratch is not second._distance_scratch
        points = np.array([[0.5, 0.5], [4.0, 4.0]])
        d1, _ = first.distances_to(points)
        d2, _ = second.distances_to(points)
        # Shapes differ (2 vs 1 states): per-instance scratch must have
        # kept each call's buffers apart.
        assert d1.shape == (2, 2) and d2.shape == (2, 1)
        d1_again, _ = first.distances_to(points)
        assert np.array_equal(d1, d1_again)

    def test_interleaved_fleet_engines_do_not_share_scratch(self):
        from repro.fleet import FleetEngine
        from repro.perf import _fleet_workload

        loads = [_fleet_workload(seed, n_windows=40) for seed in (0, 1)]

        solo_digests = []
        for load in loads:
            engine = FleetEngine([DetectionPipeline(PipelineConfig())])
            engine.process_windows([load])
            solo_digests.append(engine.digests())

        engines = [
            FleetEngine([DetectionPipeline(PipelineConfig())])
            for _ in range(2)
        ]
        assert (
            engines[0]._kernel_scratch is not engines[1]._kernel_scratch
        )
        for a, b in zip(*loads):
            engines[0].process_windows([[a]])
            engines[1].process_windows([[b]])
        assert [engine.digests() for engine in engines] == solo_digests
