"""Scenario trace cache: correctness, invalidation, campaign integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import ScenarioSpec, run_scenarios_parallel
from repro.traces import (
    CachedTrace,
    TraceCache,
    canonical_spec_hash,
    scenario_spec,
)
from repro.traces import cache as cache_module


@pytest.fixture
def store_args():
    rng = np.random.default_rng(0)
    return dict(
        timestamps=np.arange(12, dtype=float) * 5.0,
        sensor_ids=np.arange(12, dtype=np.int64) % 3,
        values=rng.normal(20.0, 1.0, size=(12, 2)),
        attribute_names=("temperature", "humidity"),
        metadata={"accepted": 12.0, "lost": 1.0},
        ground_truth={6: "stuck_at"},
        label="stuck-at",
    )


class TestSpecHashing:
    def test_hash_is_order_insensitive(self):
        a = {"x": 1, "y": "z"}
        b = {"y": "z", "x": 1}
        assert canonical_spec_hash(a) == canonical_spec_hash(b)

    def test_scenario_spec_embeds_generator_version(self):
        spec = scenario_spec("clean", n_days=3, seed=7)
        assert spec["generator_version"] == cache_module.GENERATOR_VERSION
        assert spec["scenario"] == "clean"
        assert spec["n_days"] == 3
        assert spec["seed"] == 7

    def test_any_spec_field_changes_the_key(self):
        base = scenario_spec("clean", n_days=3, seed=7)
        variants = [
            scenario_spec("stuck_at", n_days=3, seed=7),
            scenario_spec("clean", n_days=4, seed=7),
            scenario_spec("clean", n_days=3, seed=8),
            dict(base, generator_version=base["generator_version"] + 1),
        ]
        hashes = {canonical_spec_hash(spec) for spec in variants}
        assert canonical_spec_hash(base) not in hashes
        assert len(hashes) == len(variants)


class TestTraceCache:
    def test_round_trip(self, tmp_path, store_args):
        cache = TraceCache(tmp_path)
        spec = scenario_spec("stuck_at", n_days=1, seed=9)
        path = cache.store(spec, **store_args)
        assert path.is_file()

        entry = cache.load(spec)
        assert isinstance(entry, CachedTrace)
        assert np.array_equal(entry.timestamps, store_args["timestamps"])
        assert np.array_equal(entry.sensor_ids, store_args["sensor_ids"])
        assert np.array_equal(entry.values, store_args["values"])
        assert entry.attribute_names == store_args["attribute_names"]
        assert entry.metadata == store_args["metadata"]
        assert entry.ground_truth == store_args["ground_truth"]
        assert entry.label == "stuck-at"

    def test_loaded_arrays_are_frozen(self, tmp_path, store_args):
        cache = TraceCache(tmp_path)
        spec = scenario_spec("stuck_at", n_days=1, seed=9)
        cache.store(spec, **store_args)
        entry = cache.load(spec)
        for array in (entry.timestamps, entry.sensor_ids, entry.values):
            assert not array.flags.writeable

    def test_loaded_arrays_are_zero_copy_views(self, tmp_path, store_args):
        """Fresh entries map straight into the file, no materialization."""
        cache = TraceCache(tmp_path)
        spec = scenario_spec("stuck_at", n_days=1, seed=9)
        cache.store(spec, **store_args)
        entry = cache.load(spec)
        for array in (entry.timestamps, entry.sensor_ids, entry.values):
            assert not array.flags.owndata

    def test_legacy_compressed_entry_still_loads(self, tmp_path, store_args):
        """Entries written as compressed .npz fall back to np.load."""
        cache = TraceCache(tmp_path)
        spec = scenario_spec("stuck_at", n_days=1, seed=9)
        path = cache.store(spec, **store_args)
        with np.load(path, allow_pickle=False) as payload:
            members = {name: payload[name] for name in payload.files}
        np.savez_compressed(path, **members)

        entry = cache.load(spec)
        assert isinstance(entry, CachedTrace)
        assert np.array_equal(entry.values, store_args["values"])
        assert (cache.hits, cache.quarantined) == (1, 0)

    def test_hit_and_miss_counters(self, tmp_path, store_args):
        cache = TraceCache(tmp_path)
        spec = scenario_spec("clean", n_days=1, seed=9)
        assert cache.load(spec) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.store(spec, **store_args)
        assert cache.load(spec) is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.stats_line() == "cache: hits=1 misses=1"

    def test_spec_change_misses(self, tmp_path, store_args):
        cache = TraceCache(tmp_path)
        cache.store(scenario_spec("clean", n_days=1, seed=9), **store_args)
        assert cache.load(scenario_spec("clean", n_days=1, seed=10)) is None
        assert cache.load(scenario_spec("clean", n_days=2, seed=9)) is None
        assert cache.load(scenario_spec("faulty", n_days=1, seed=9)) is None

    def test_generator_version_bump_invalidates(
        self, tmp_path, store_args, monkeypatch
    ):
        cache = TraceCache(tmp_path)
        cache.store(scenario_spec("clean", n_days=1, seed=9), **store_args)
        monkeypatch.setattr(
            cache_module,
            "GENERATOR_VERSION",
            cache_module.GENERATOR_VERSION + 1,
        )
        assert cache.load(scenario_spec("clean", n_days=1, seed=9)) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path, store_args, monkeypatch):
        cache = TraceCache(tmp_path)
        spec = scenario_spec("clean", n_days=1, seed=9)
        cache.store(spec, **store_args)
        monkeypatch.setattr(
            cache_module,
            "CACHE_SCHEMA_VERSION",
            cache_module.CACHE_SCHEMA_VERSION + 1,
        )
        assert cache.load(spec) is None
        assert cache.misses == 1

    def test_store_leaves_no_temp_files(self, tmp_path, store_args):
        cache = TraceCache(tmp_path)
        cache.store(scenario_spec("clean", n_days=1, seed=9), **store_args)
        cache.store(scenario_spec("clean", n_days=1, seed=9), **store_args)
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".tmp-")]
        assert leftovers == []
        assert len(list(tmp_path.glob("*.npz"))) == 1


class TestQuarantine:
    def corrupt(self, cache, spec, payload=b"this is not a zip archive"):
        path = cache.path_for(spec)
        path.write_bytes(payload)
        return path

    def test_corrupted_entry_is_a_miss_and_quarantined(
        self, tmp_path, store_args
    ):
        cache = TraceCache(tmp_path)
        spec = scenario_spec("clean", n_days=1, seed=9)
        cache.store(spec, **store_args)
        path = self.corrupt(cache, spec)

        assert cache.load(spec) is None
        assert (cache.hits, cache.misses, cache.quarantined) == (0, 1, 1)
        assert not path.exists()
        assert (tmp_path / "quarantine" / path.name).is_file()

    def test_truncated_entry_is_a_miss(self, tmp_path, store_args):
        cache = TraceCache(tmp_path)
        spec = scenario_spec("clean", n_days=1, seed=9)
        path = cache.store(spec, **store_args)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.load(spec) is None
        assert cache.quarantined == 1

    def test_missing_array_key_is_a_miss(self, tmp_path, store_args):
        cache = TraceCache(tmp_path)
        spec = scenario_spec("clean", n_days=1, seed=9)
        path = cache.store(spec, **store_args)
        with np.load(path, allow_pickle=False) as payload:
            kept = {
                key: payload[key]
                for key in payload.files
                if key != "values"
            }
        np.savez_compressed(path, **kept)
        assert cache.load(spec) is None
        assert cache.quarantined == 1

    def test_restore_after_quarantine_round_trips(self, tmp_path, store_args):
        cache = TraceCache(tmp_path)
        spec = scenario_spec("clean", n_days=1, seed=9)
        cache.store(spec, **store_args)
        self.corrupt(cache, spec)
        assert cache.load(spec) is None
        cache.store(spec, **store_args)
        entry = cache.load(spec)
        assert entry is not None
        np.testing.assert_array_equal(entry.values, store_args["values"])
        assert (cache.hits, cache.misses, cache.quarantined) == (1, 1, 1)

    def test_stats_line_reports_quarantines(self, tmp_path, store_args):
        cache = TraceCache(tmp_path)
        spec = scenario_spec("clean", n_days=1, seed=9)
        assert "quarantined" not in cache.stats_line()
        cache.store(spec, **store_args)
        self.corrupt(cache, spec)
        cache.load(spec)
        assert cache.stats_line() == "cache: hits=0 misses=1 quarantined=1"


class TestCampaignIntegration:
    def test_cold_and_hot_runs_are_identical(self, tmp_path):
        specs = [
            ScenarioSpec("clean", n_days=2, seed=11),
            ScenarioSpec("stuck_at", n_days=2, seed=11),
        ]
        cold = run_scenarios_parallel(specs, n_jobs=1, cache_dir=str(tmp_path))
        hot = run_scenarios_parallel(specs, n_jobs=1, cache_dir=str(tmp_path))

        assert [o.from_cache for o in cold] == [False, False]
        assert [o.from_cache for o in hot] == [True, True]
        # from_cache is excluded from equality; everything else must match.
        assert hot == cold
        assert [o.digest for o in hot] == [o.digest for o in cold]
        assert all(o.digest for o in cold)

    def test_cache_matches_uncached_run(self, tmp_path):
        specs = [ScenarioSpec("stuck_at", n_days=2, seed=11)]
        uncached = run_scenarios_parallel(specs, n_jobs=1)
        hot = run_scenarios_parallel(specs, n_jobs=1, cache_dir=str(tmp_path))
        hot = run_scenarios_parallel(specs, n_jobs=1, cache_dir=str(tmp_path))
        assert hot == uncached
        # The run label survives the cache round trip (it differs from
        # the registry key: "stuck_at" vs "stuck-at").
        assert hot[0].name == uncached[0].name == "stuck-at"

    def test_cache_dir_is_created_on_demand(self, tmp_path):
        target = tmp_path / "nested" / "cache"
        specs = [ScenarioSpec("clean", n_days=2, seed=5)]
        run_scenarios_parallel(specs, n_jobs=1, cache_dir=str(target))
        assert list(target.glob("*.npz"))


def _deterministic_store_args(seed: int = 4):
    """Identical bytes for every writer — the multi-writer invariant."""
    rng = np.random.default_rng(seed)
    return dict(
        timestamps=np.arange(30, dtype=float) * 5.0,
        sensor_ids=np.arange(30, dtype=np.int64) % 5,
        values=rng.normal(20.0, 1.0, size=(30, 2)),
        attribute_names=("temperature", "humidity"),
        metadata={"accepted": 30.0, "lost": 0.0},
        ground_truth={2: "stuck_at"},
        label="stuck-at",
    )


def _store_same_entry(root) -> str:
    """Worker body for the cross-process race (module-level: picklable)."""
    cache = TraceCache(root)
    spec = scenario_spec("race", n_days=1, seed=4)
    return str(cache.store(spec, **_deterministic_store_args()))


class TestConcurrentWriters:
    """Writers racing on the same miss must never publish a torn entry."""

    def test_temp_names_are_writer_unique(self, tmp_path, monkeypatch):
        import os
        import threading

        seen = []
        real_mkstemp = cache_module.tempfile.mkstemp

        def spying_mkstemp(*args, **kwargs):
            seen.append(kwargs["prefix"])
            return real_mkstemp(*args, **kwargs)

        monkeypatch.setattr(cache_module.tempfile, "mkstemp", spying_mkstemp)
        TraceCache(tmp_path).store(
            scenario_spec("clean", n_days=1, seed=9),
            **_deterministic_store_args(),
        )
        assert seen == [f".tmp-{os.getpid()}-{threading.get_ident()}-"]

    def test_two_threads_race_on_the_same_miss(self, tmp_path):
        import threading

        spec = scenario_spec("race", n_days=1, seed=4)
        barrier = threading.Barrier(2)
        errors = []

        def writer():
            try:
                barrier.wait(timeout=30)
                _store_same_entry(tmp_path)
            except Exception as exc:  # surfaced below; threads swallow
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        # Whichever writer published last, the entry is intact.
        entry = TraceCache(tmp_path).load(spec)
        assert entry is not None
        expected = _deterministic_store_args()
        assert np.array_equal(entry.values, expected["values"])
        assert entry.ground_truth == expected["ground_truth"]
        # No abandoned temp files survive a clean race.
        assert not list(tmp_path.glob(".tmp-*"))

    def test_two_processes_race_on_the_same_miss(self, tmp_path):
        from concurrent.futures import ProcessPoolExecutor

        spec = scenario_spec("race", n_days=1, seed=4)
        with ProcessPoolExecutor(max_workers=2) as pool:
            paths = list(
                pool.map(_store_same_entry, [tmp_path, tmp_path])
            )
        assert paths[0] == paths[1]  # same content hash, same entry
        entry = TraceCache(tmp_path).load(spec)
        assert entry is not None
        expected = _deterministic_store_args()
        assert np.array_equal(entry.timestamps, expected["timestamps"])
        assert np.array_equal(entry.values, expected["values"])
        assert not list(tmp_path.glob(".tmp-*"))
