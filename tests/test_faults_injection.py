"""Unit tests for repro.faults.injector and repro.faults.campaign."""

import numpy as np
import pytest

from repro.faults import (
    ActivationSchedule,
    AdditiveFault,
    BenignAttack,
    CampaignSpec,
    DynamicCreationAttack,
    FaultInjector,
    StuckAtFault,
    choose_compromised,
)
from repro.sensornet import ConstantEnvironment, SensorMessage


def msg(sensor_id: int, t: float = 0.0) -> SensorMessage:
    return SensorMessage(sensor_id=sensor_id, timestamp=t, attributes=(20.0, 75.0))


class TestFaultInjector:
    def test_untargeted_sensors_pass_through(self):
        injector = FaultInjector(environment=ConstantEnvironment())
        injector.add(StuckAtFault(value=(0.0, 0.0)), [3])
        out = injector(msg(1))
        assert out.attributes == (20.0, 75.0)

    def test_targeted_sensor_is_corrupted(self):
        injector = FaultInjector(environment=ConstantEnvironment())
        injector.add(StuckAtFault(value=(0.0, 0.0)), [3])
        out = injector(msg(3))
        assert out.attributes == (0.0, 0.0)

    def test_schedule_gates_corruption(self):
        injector = FaultInjector(environment=ConstantEnvironment())
        injector.add(
            StuckAtFault(value=(0.0, 0.0)),
            [3],
            ActivationSchedule(start_minutes=100.0),
        )
        early = injector(msg(3, t=50.0))
        late = injector(msg(3, t=150.0))
        assert early.attributes == (20.0, 75.0)
        assert late.attributes == (0.0, 0.0)

    def test_first_matching_injection_wins(self):
        injector = FaultInjector(environment=ConstantEnvironment())
        injector.add(StuckAtFault(value=(1.0, 1.0)), [3])
        injector.add(StuckAtFault(value=(2.0, 2.0)), [3])
        assert injector(msg(3)).attributes == (1.0, 1.0)

    def test_events_log_records_corruptions(self):
        injector = FaultInjector(environment=ConstantEnvironment())
        injector.add(StuckAtFault(value=(0.0, 0.0)), [3])
        injector(msg(3, t=5.0))
        injector(msg(1, t=5.0))
        assert len(injector.events) == 1
        event = injector.events[0]
        assert event.sensor_id == 3
        assert event.kind == "stuck_at"
        assert not event.malicious

    def test_adversary_sees_true_environment(self):
        env = ConstantEnvironment(attributes=(13.0, 93.0))
        injector = FaultInjector(environment=env)
        injector.add(
            DynamicCreationAttack(target=(14.0, 56.0), fraction=0.4), [0]
        )
        report = injector(msg(0)).vector
        mean = 0.6 * np.array([13.0, 93.0]) + 0.4 * report
        assert np.allclose(mean, [14.0, 56.0], atol=1e-9)

    def test_corrupted_sensor_ids(self):
        injector = FaultInjector(environment=ConstantEnvironment())
        injector.add(StuckAtFault(), [1, 2])
        injector.add(AdditiveFault(), [5])
        assert injector.corrupted_sensor_ids() == {1, 2, 5}

    def test_ground_truth_kind(self):
        injector = FaultInjector(environment=ConstantEnvironment())
        injector.add(AdditiveFault(), [5])
        assert injector.ground_truth_kind(5) == "additive"
        assert injector.ground_truth_kind(0) is None

    def test_rejects_empty_sensor_set(self):
        injector = FaultInjector(environment=ConstantEnvironment())
        with pytest.raises(ValueError):
            injector.add(StuckAtFault(), [])


class TestCampaignSpec:
    def test_ground_truth_first_plant_wins(self):
        campaign = CampaignSpec()
        campaign.plant(StuckAtFault(), [1])
        campaign.plant(AdditiveFault(), [1, 2])
        truth = campaign.ground_truth()
        assert truth == {1: "stuck_at", 2: "additive"}

    def test_malicious_vs_faulty_partition(self):
        campaign = CampaignSpec()
        campaign.plant(StuckAtFault(), [1])
        campaign.plant(BenignAttack(), [2, 3])
        assert campaign.faulty_sensor_ids() == [1]
        assert campaign.malicious_sensor_ids() == [2, 3]

    def test_build_injector_materialises_entries(self):
        campaign = CampaignSpec()
        campaign.plant(StuckAtFault(value=(0.0, 0.0)), [4])
        injector = campaign.build_injector(ConstantEnvironment())
        assert injector(msg(4)).attributes == (0.0, 0.0)

    def test_plant_is_chainable(self):
        campaign = CampaignSpec().plant(StuckAtFault(), [1]).plant(
            AdditiveFault(), [2]
        )
        assert len(campaign.entries) == 2


class TestChooseCompromised:
    def test_one_third_of_ten_is_four_with_ceil(self):
        chosen = choose_compromised(range(10), 1.0 / 3.0, seed=0)
        assert len(chosen) == 4

    def test_deterministic_given_seed(self):
        assert choose_compromised(range(10), 0.3, seed=5) == choose_compromised(
            range(10), 0.3, seed=5
        )

    def test_at_least_one_chosen(self):
        assert len(choose_compromised(range(10), 0.01, seed=0)) == 1

    def test_full_fraction_takes_everyone(self):
        assert choose_compromised(range(5), 1.0, seed=0) == list(range(5))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            choose_compromised([], 0.5)
        with pytest.raises(ValueError):
            choose_compromised(range(5), 0.0)
