"""Fleet checkpoint round-trips: pack -> state_dict -> restore -> unpack.

A fleet checkpoint is only trustworthy if a restored engine continues
exactly where the original left off — per tenant, bit for bit.  The
tests drive an engine partway through heterogeneous traces, snapshot
it (through a real JSON round-trip, like a file on disk), restore into
a fresh engine, finish the run there, and demand the outcome equal a
per-tenant fused run split at the same boundary.
"""

from __future__ import annotations

import json

import pytest

from repro import DetectionPipeline, PipelineConfig
from repro.fleet import FleetEngine

from .test_fleet_engine import regime_windows, snapshot_json

FILTER_KINDS = ("k_of_n", "sprt", "cusum")
SUPERVISOR_MODES = ("off", "warn", "repair")


def heterogeneous_tenants(n_windows: int = 80):
    tenants = []
    for tid, (kind, mode) in enumerate(
        (kind, mode) for kind in FILTER_KINDS for mode in SUPERVISOR_MODES
    ):
        config = PipelineConfig(filter_kind=kind, supervisor_mode=mode)
        windows = regime_windows(
            seed=200 + tid, n_windows=n_windows, n_sensors=4 + tid % 4
        )
        tenants.append((config, windows))
    return tenants


def json_roundtrip(payload):
    return json.loads(json.dumps(payload))


def test_state_dict_restore_unpack_bit_identical():
    # Freshly packed fleet, no windows processed: the checkpoint must
    # reproduce every tenant exactly.
    tenants = heterogeneous_tenants()
    pipelines = [DetectionPipeline(config) for config, _ in tenants]
    engine = FleetEngine.from_pipelines(pipelines)
    restored = FleetEngine.restore(json_roundtrip(engine.state_dict()))
    assert restored.digests() == engine.digests()
    for ours, theirs in zip(engine.to_pipelines(), restored.to_pipelines()):
        assert snapshot_json(ours) == snapshot_json(theirs)


def test_mid_trace_checkpoint_handoff():
    # Advance half the fleet's traces, checkpoint, restore into a new
    # engine, finish there.  Per tenant the outcome must equal a fused
    # per-tenant run split at the same window boundary — including the
    # supervised tenants, whose supervisor state rides the snapshot.
    tenants = heterogeneous_tenants()
    split = 40

    solo = []
    for config, windows in tenants:
        pipeline = DetectionPipeline(config)
        pipeline.process_windows_fast(windows[:split])
        pipeline.process_windows_fast(windows[split:])
        solo.append(pipeline)

    first = FleetEngine.from_pipelines(
        [DetectionPipeline(config) for config, _ in tenants]
    )
    first.process_windows([windows[:split] for _, windows in tenants])
    payload = json_roundtrip(first.state_dict())

    second = FleetEngine.restore(payload)
    second.process_windows([windows[split:] for _, windows in tenants])

    for reference, resumed in zip(solo, second.to_pipelines()):
        assert reference.digest() == resumed.digest()
        assert snapshot_json(reference) == snapshot_json(resumed)
        # Checkpoints carry state, not result history: the resumed
        # engine holds exactly the post-split window results.
        tail = reference.results[split:]
        assert len(tail) == len(resumed.results)
        for ours, theirs in zip(tail, resumed.results):
            assert ours == theirs


def test_checkpoint_mid_steady_stretch():
    # Checkpoint at a boundary chosen to land inside a long certified
    # steady stretch (mid-dwell): the engine must flush its deferred
    # run-length state into the snapshot, and the resumed engine must
    # re-certify and continue bit-identically.
    config = PipelineConfig()
    windows = regime_windows(seed=300, n_windows=80, dwell=40)
    split = 30  # inside the first dwell's certified stretch

    reference = DetectionPipeline(config)
    reference.process_windows_fast(windows[:split])
    reference.process_windows_fast(windows[split:])

    first = FleetEngine.from_pipelines([DetectionPipeline(config)])
    first.process_windows([windows[:split]])
    second = FleetEngine.restore(json_roundtrip(first.state_dict()))
    second.process_windows([windows[split:]])

    (resumed,) = second.to_pipelines()
    assert reference.digest() == resumed.digest()
    assert snapshot_json(reference) == snapshot_json(resumed)


def test_restore_rejects_unknown_version():
    from repro.resilience import CheckpointVersionError

    with pytest.raises(CheckpointVersionError) as excinfo:
        FleetEngine.restore({"fleet_version": 999, "tenants": []})
    assert excinfo.value.found == 999
    assert excinfo.value.expected == 1
    assert "999" in str(excinfo.value)
    with pytest.raises(CheckpointVersionError) as excinfo:
        FleetEngine.restore({"tenants": []})
    assert excinfo.value.found is None
    assert excinfo.value.expected == 1


def test_state_dict_is_json_ready():
    tenants = heterogeneous_tenants(n_windows=20)
    engine = FleetEngine.from_pipelines(
        [DetectionPipeline(config) for config, _ in tenants]
    )
    engine.process_windows([windows for _, windows in tenants])
    payload = engine.state_dict()
    assert payload["fleet_version"] == 1
    assert len(payload["tenants"]) == len(tenants)
    json.dumps(payload)  # must not need a custom encoder
