"""Property-based tests (hypothesis) on the core invariants.

These cover the load-bearing mathematical guarantees:

* the §3.2 online updates keep A and B row-stochastic for *any* input
  stream (the paper proves this; we check it mechanically),
* the online clusterer's structural operations preserve id resolution
  and state-count bounds,
* the alarm filters are pure functions of their input streams,
* forward/backward likelihoods are consistent under scaling.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import OnlineStateClusterer
from repro.core.filtering import CUSUMFilter, KOfNFilter, SPRTFilter
from repro.core.markov import estimate_markov_model
from repro.core.online_hmm import OnlineHMM
from repro.core.orthogonality import analyze_orthogonality
from repro.hmm import DiscreteHMM, forward_backward, log_likelihood
from repro.hmm.utils import normalize_rows

# -- strategies -------------------------------------------------------------

state_symbol_streams = st.lists(
    st.tuples(st.integers(0, 6), st.integers(-1, 8)), min_size=1, max_size=60
)

observation_batches = st.lists(
    st.lists(
        st.tuples(
            st.floats(-20.0, 60.0, allow_nan=False),
            st.floats(0.0, 100.0, allow_nan=False),
        ),
        min_size=1,
        max_size=6,
    ),
    min_size=1,
    max_size=12,
)

boolean_streams = st.lists(st.booleans(), min_size=1, max_size=80)


# -- online HMM invariants ---------------------------------------------------


class TestOnlineHMMProperties:
    @given(stream=state_symbol_streams)
    @settings(max_examples=60, deadline=None)
    def test_matrices_stay_row_stochastic(self, stream):
        hmm = OnlineHMM(transition_innovation=0.1, emission_innovation=0.1)
        for state, symbol in stream:
            hmm.observe(state, symbol)
        assert hmm.is_row_stochastic()

    @given(stream=state_symbol_streams)
    @settings(max_examples=60, deadline=None)
    def test_matrices_stay_non_negative(self, stream):
        hmm = OnlineHMM(transition_innovation=0.3, emission_innovation=0.7)
        for state, symbol in stream:
            hmm.observe(state, symbol)
        emission = hmm.emission_matrix()
        assert np.all(emission.matrix >= -1e-12)

    @given(stream=state_symbol_streams)
    @settings(max_examples=40, deadline=None)
    def test_visit_counts_total_updates(self, stream):
        hmm = OnlineHMM()
        for state, symbol in stream:
            hmm.observe(state, symbol)
        total = sum(hmm.state_visits(s) for s in hmm.state_ids)
        assert total == len(stream) == hmm.n_updates

    @given(stream=state_symbol_streams, floor=st.floats(0.0, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_denoised_snapshot_remains_stochastic(self, stream, floor):
        hmm = OnlineHMM()
        for state, symbol in stream:
            hmm.observe(state, symbol)
        snapshot = hmm.emission_matrix().denoised(floor)
        if snapshot.matrix.size:
            assert np.allclose(snapshot.matrix.sum(axis=1), 1.0)

    @given(stream=state_symbol_streams)
    @settings(max_examples=40, deadline=None)
    def test_orthogonality_report_bounds(self, stream):
        hmm = OnlineHMM()
        for state, symbol in stream:
            hmm.observe(state, symbol)
        report = analyze_orthogonality(hmm.emission_matrix())
        assert 0.0 <= report.max_row_cross <= 1.0 + 1e-9
        assert 0.0 <= report.min_row_self <= 1.0 + 1e-9


# -- clusterer invariants -----------------------------------------------------


class TestClustererProperties:
    @given(batches=observation_batches)
    @settings(max_examples=40, deadline=None)
    def test_state_count_bounded_and_ids_resolve(self, batches):
        clusterer = OnlineStateClusterer(
            initial_vectors=[np.array([20.0, 70.0])],
            alpha=0.2,
            spawn_threshold=10.0,
            merge_threshold=5.0,
            max_states=12,
        )
        issued = set()
        for batch in batches:
            update = clusterer.update(np.asarray(batch))
            issued.update(update.assignments)
            issued.update(update.spawned)
        assert clusterer.n_states <= 12
        for state_id in issued:
            resolved = clusterer.resolve(state_id)
            clusterer.state_vector(resolved)  # must not raise

    @given(batches=observation_batches)
    @settings(max_examples=40, deadline=None)
    def test_assignments_reference_live_states(self, batches):
        clusterer = OnlineStateClusterer(
            initial_vectors=[np.array([20.0, 70.0])],
            alpha=0.2,
            spawn_threshold=10.0,
            merge_threshold=5.0,
        )
        for batch in batches:
            update = clusterer.update(np.asarray(batch))
            live = set(clusterer.states.state_ids)
            assert set(update.assignments) <= live

    @given(
        point=st.tuples(
            st.floats(-20.0, 60.0, allow_nan=False),
            st.floats(0.0, 100.0, allow_nan=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_assign_returns_nearest(self, point):
        clusterer = OnlineStateClusterer(
            initial_vectors=[
                np.array([10.0, 90.0]),
                np.array([30.0, 50.0]),
            ],
            alpha=0.1,
            spawn_threshold=100.0,
            merge_threshold=1.0,
        )
        chosen = clusterer.assign(np.asarray(point))
        distances = {
            s: float(np.linalg.norm(clusterer.state_vector(s) - np.asarray(point)))
            for s in clusterer.states.state_ids
        }
        assert distances[chosen] == min(distances.values())


# -- filter invariants ---------------------------------------------------------


class TestFilterProperties:
    @given(stream=boolean_streams)
    @settings(max_examples=60, deadline=None)
    def test_filters_deterministic(self, stream):
        for factory in (
            lambda: KOfNFilter(k=3, n=5),
            lambda: SPRTFilter(),
            lambda: CUSUMFilter(),
        ):
            a, b = factory(), factory()
            out_a = [a.update(x) for x in stream]
            out_b = [b.update(x) for x in stream]
            assert out_a == out_b

    @given(stream=boolean_streams)
    @settings(max_examples=60, deadline=None)
    def test_all_quiet_stream_never_alarms(self, stream):
        quiet = [False] * len(stream)
        for factory in (
            lambda: KOfNFilter(k=3, n=5),
            lambda: SPRTFilter(),
            lambda: CUSUMFilter(),
        ):
            filt = factory()
            assert not any(filt.update(x) for x in quiet)

    @given(n_true=st.integers(3, 40))
    @settings(max_examples=30, deadline=None)
    def test_k_of_n_fires_within_k_alarms(self, n_true):
        filt = KOfNFilter(k=3, n=5)
        outputs = [filt.update(True) for _ in range(n_true)]
        assert outputs[2]  # the third consecutive raw alarm trips it


# -- markov estimation invariants ---------------------------------------------


class TestMarkovProperties:
    @given(sequence=st.lists(st.integers(0, 5), min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_transition_rows_stochastic(self, sequence):
        model = estimate_markov_model(sequence)
        assert np.allclose(model.transition.sum(axis=1), 1.0)
        assert sum(model.visit_counts) == len(sequence)

    @given(
        sequence=st.lists(st.integers(0, 5), min_size=2, max_size=80),
        fraction=st.floats(0.0, 0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_pruning_never_empties(self, sequence, fraction):
        pruned = estimate_markov_model(sequence).prune(fraction)
        assert pruned.n_states >= 1
        assert np.allclose(pruned.transition.sum(axis=1), 1.0)


# -- classic HMM invariants ------------------------------------------------------


class TestHMMProperties:
    @given(
        seed=st.integers(0, 10_000),
        length=st.integers(1, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_likelihood_consistency(self, seed, length):
        rng = np.random.default_rng(seed)
        model = DiscreteHMM.random(3, 4, rng)
        obs = rng.integers(0, 4, size=length)
        direct = log_likelihood(model, obs)
        via_fb = forward_backward(model, obs).log_likelihood
        assert np.isclose(direct, via_fb, atol=1e-9)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_normalize_rows_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.random((4, 5))
        once = normalize_rows(matrix)
        twice = normalize_rows(once)
        assert np.allclose(once, twice)
