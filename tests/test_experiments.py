"""Tests for the experiment harness (figures, tables, runner)."""

import numpy as np
import pytest

from repro.core.classification import AnomalyType
from repro.experiments import (
    compute_initial_states,
    figure6,
    figure7,
    figure8,
    figure9,
    figure12,
    reference_states,
    run_pipeline,
    table1,
    table2_3,
    table4_5,
    table6,
    table7,
)


class TestRunner:
    def test_compute_initial_states_counts(self, clean_run):
        states = compute_initial_states(clean_run.trace, clean_run.config)
        assert states.shape == (6, 2)

    def test_run_pipeline_with_offline_states(self, clean_run):
        states = compute_initial_states(clean_run.trace, clean_run.config)
        pipeline = run_pipeline(
            clean_run.trace, clean_run.config, initial_states=states
        )
        assert pipeline.tracks.n_tracks == 0

    def test_reference_states_sorted_cold_to_hot(self):
        anchors = reference_states(n_days=5)
        temps = [float(a[0]) for a in anchors]
        assert temps == sorted(temps)
        assert len(anchors) >= 3

    def test_scenario_run_ground_truth(self, stuck_run):
        assert stuck_run.ground_truth == {6: "stuck_at"}
        assert len(stuck_run.windows()) > 0


class TestTable1:
    def test_values_match_paper(self):
        result = table1()
        assert result.value_of("K") == "10"
        assert result.value_of("M") == "6"
        assert result.value_of("w") == "12"
        assert result.value_of("alpha") == "0.10"
        assert result.value_of("beta") == "0.90"
        assert result.value_of("gamma") == "0.90"

    def test_render_contains_descriptions(self):
        text = table1().render()
        assert "Learning factor" in text
        assert "Table 1" in text

    def test_unknown_parameter_raises(self):
        with pytest.raises(KeyError):
            table1().value_of("zz")


class TestFigure6:
    def test_diurnal_profile(self, clean_run):
        result = figure6(clean_run, day_index=8)
        assert len(result.hours) >= 20
        low, high = result.temperature_range
        assert high - low > 10  # clear diurnal swing
        assert result.anticorrelation() < -0.9
        assert "Figure 6" in result.render()


class TestFigure7:
    def test_main_states_match_paper_shape(self, clean_run):
        result = figure7(clean_run)
        states = result.main_states
        assert 3 <= len(states) <= 6
        # Coldest state humid, hottest state dry (paper: (12,94)..(31,56)).
        assert states[0][1] > 80
        assert states[-1][1] < 70
        assert "Figure 7" in result.render()


class TestFigure8:
    def test_sensor6_humidity_collapses(self, faulty_run):
        result = figure8(faulty_run, start_day=7, n_days=6)
        # By the second week the drifting sensor reads far below healthy.
        assert result.final_humidity(6) < 40.0
        assert result.final_humidity(9) > 50.0

    def test_sensor7_reads_high(self, faulty_run):
        result = figure8(faulty_run, start_day=7, n_days=6)
        # Paper: "a value about 10% higher than the correct sensors".
        assert 1.05 < result.mean_ratio(7, reference_id=9) < 1.3

    def test_render(self, faulty_run):
        text = figure8(faulty_run).render()
        assert "sensor 6" in text and "sensor 9" in text


class TestFigure9:
    def test_matrices_exposed(self, faulty_run):
        result = figure9(faulty_run, sensor_id=6)
        assert result.b_co.matrix.size > 0
        assert result.b_ce.matrix.size > 0
        assert result.a_co.shape[0] == len(result.a_co_state_ids)
        assert "M_CO" in result.render() and "M_CE" in result.render()

    def test_untracked_sensor_raises(self, clean_run):
        with pytest.raises(RuntimeError):
            figure9(clean_run, sensor_id=0)


class TestFigure12:
    def test_rates_separate_faulty_from_healthy(self, faulty_run):
        result = figure12(faulty_run, faulty_sensor=6, healthy_sensor=9)
        assert result.faulty_rate > 0.5
        assert result.healthy_rate < 0.05
        assert "paper: ~1.5%" in result.render()


class TestTables2345:
    def test_table2_3_stuck_at(self, faulty_run):
        result = table2_3(faulty_run)
        assert result.diagnosis.anomaly_type is AnomalyType.STUCK_AT
        text = result.render()
        assert "Table 2" in text and "Table 3" in text
        assert "⊥" in text  # the fictitious state column is displayed

    def test_table2_b_co_diagonally_dominant(self, faulty_run):
        result = table2_3(faulty_run)
        matrix = result.b_co.matrix
        common = [s for s in result.b_co.state_ids if s in result.b_co.symbol_ids]
        for state_id in common:
            row = result.b_co.state_ids.index(state_id)
            col = result.b_co.symbol_ids.index(state_id)
            assert matrix[row, col] >= 0.5

    def test_table4_5_calibration(self, faulty_run):
        result = table4_5(faulty_run)
        assert result.diagnosis.anomaly_type is AnomalyType.CALIBRATION


class TestTables67:
    def test_table6_deletion(self, deletion_run):
        result = table6(deletion_run)
        assert result.anomaly_type is AnomalyType.DYNAMIC_DELETION
        assert result.compromised_sensors == tuple(
            deletion_run.campaign.malicious_sensor_ids()
        )
        assert "Table 6" in result.render()

    def test_table7_creation(self, creation_run):
        result = table7(creation_run)
        assert result.anomaly_type is AnomalyType.DYNAMIC_CREATION
        assert set(result.tracked_sensors) >= set(result.compromised_sensors)
