"""Unit tests for repro.sensornet.topology and .simulator."""

import numpy as np
import pytest

from repro.sensornet import (
    CollectorNode,
    ConstantEnvironment,
    Deployment,
    Mote,
    MotePlacement,
    NetworkSimulator,
    PiecewiseRegimeEnvironment,
)


class TestDeployment:
    def test_random_field_places_all_motes(self):
        deployment = Deployment.random_field(n_motes=8, seed=1)
        assert len(deployment.placements) == 8
        assert deployment.sensor_ids == list(range(8))

    def test_random_field_is_deterministic(self):
        a = Deployment.random_field(n_motes=4, seed=9)
        b = Deployment.random_field(n_motes=4, seed=9)
        assert [(p.x, p.y) for p in a.placements] == [
            (p.x, p.y) for p in b.placements
        ]

    def test_loss_grows_with_distance_and_clips(self):
        deployment = Deployment.random_field(
            n_motes=2, reference_distance=100.0, reference_loss=0.2, max_loss=0.6
        )
        assert deployment.loss_probability_at(0.0) == 0.0
        assert deployment.loss_probability_at(100.0) == pytest.approx(0.2)
        assert deployment.loss_probability_at(1000.0) == 0.6

    def test_build_network_has_link_per_mote(self):
        deployment = Deployment.random_field(n_motes=5, seed=2)
        network = deployment.build_network()
        assert set(network.links) == set(range(5))

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError):
            Deployment(
                placements=[
                    MotePlacement(sensor_id=0, x=0.0, y=0.0),
                    MotePlacement(sensor_id=0, x=1.0, y=1.0),
                ]
            )

    def test_bounding_box(self):
        deployment = Deployment(
            placements=[
                MotePlacement(sensor_id=0, x=-5.0, y=2.0),
                MotePlacement(sensor_id=1, x=3.0, y=-7.0),
            ]
        )
        assert deployment.bounding_box() == (-5.0, -7.0, 3.0, 2.0)


class TestNetworkSimulator:
    def build(self, n_motes=3, window_minutes=60.0, corruption=None):
        env = ConstantEnvironment()
        motes = [
            Mote(sensor_id=i, environment=env, noise_std=0.1, seed=1)
            for i in range(n_motes)
        ]
        collector = CollectorNode(window_minutes=window_minutes)
        return NetworkSimulator(
            environment=env,
            motes=motes,
            collector=collector,
            corruption=corruption,
        )

    def test_run_produces_expected_window_count(self):
        simulator = self.build()
        report = simulator.run(duration_minutes=240.0)
        assert len(report.windows) == 4
        assert report.n_ticks == 48  # 240 / 5

    def test_all_messages_delivered_without_radio(self):
        simulator = self.build(n_motes=2)
        report = simulator.run(duration_minutes=60.0)
        assert sum(len(w.messages) for w in report.windows) == 2 * 12

    def test_on_window_callback_sees_windows_in_order(self):
        simulator = self.build()
        seen = []
        simulator.run(duration_minutes=180.0, on_window=lambda w: seen.append(w.index))
        assert seen == [1, 2, 3]

    def test_corruption_stage_can_suppress_messages(self):
        simulator = self.build(corruption=lambda message: None)
        report = simulator.run(duration_minutes=60.0)
        assert all(w.is_empty for w in report.windows)

    def test_corruption_stage_can_rewrite_messages(self):
        stage = lambda m: m.with_attributes((0.0, 0.0))
        simulator = self.build(corruption=stage)
        report = simulator.run(duration_minutes=60.0)
        for window in report.windows:
            assert np.allclose(window.observations, 0.0)

    def test_rejects_bad_parameters(self):
        env = ConstantEnvironment()
        with pytest.raises(ValueError):
            NetworkSimulator(
                environment=env, motes=[], collector=CollectorNode()
            )
        with pytest.raises(ValueError):
            self.build().run(duration_minutes=0.0)

    def test_windows_follow_environment_regimes(self):
        env = PiecewiseRegimeEnvironment(
            regimes=[(10.0, 90.0), (30.0, 50.0)], dwell_minutes=60.0
        )
        motes = [Mote(sensor_id=0, environment=env, noise_std=0.0)]
        simulator = NetworkSimulator(
            environment=env,
            motes=motes,
            collector=CollectorNode(window_minutes=60.0),
        )
        report = simulator.run(duration_minutes=120.0)
        assert np.allclose(report.windows[0].overall_mean(), [10.0, 90.0])
        assert np.allclose(report.windows[1].overall_mean(), [30.0, 50.0])
