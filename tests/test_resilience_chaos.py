"""Infrastructure chaos: Gilbert-Elliott burst loss, delay/duplication/
reordering impairments, the simulator's in-flight queue, and end-to-end
ChaosCampaign graceful-degradation runs."""

import numpy as np
import pytest

from repro.cli import main
from repro.resilience import ChaosCampaign, ChaosReport, ChaosSpec
from repro.resilience.chaos import run_chaos
from repro.sensornet import (
    CollectorNode,
    ConstantEnvironment,
    GilbertElliottLoss,
    Mote,
    NetworkSimulator,
    RadioLink,
    SensorMessage,
    StarNetwork,
)


def message(sensor_id=0, timestamp=1.0, seq=0):
    return SensorMessage(
        sensor_id=sensor_id,
        timestamp=timestamp,
        attributes=(20.0, 75.0),
        sequence_number=seq,
    )


class TestGilbertElliott:
    def test_stationary_expected_loss(self):
        burst = GilbertElliottLoss(
            p_good_to_bad=0.1, p_bad_to_good=0.3, loss_good=0.0, loss_bad=0.8
        )
        # bad-state fraction = 0.1 / (0.1 + 0.3) = 0.25
        assert burst.expected_loss == pytest.approx(0.25 * 0.8)

    def test_frozen_chain_uses_current_state(self):
        burst = GilbertElliottLoss(
            p_good_to_bad=0.0, p_bad_to_good=0.0, loss_bad=0.9, start_bad=True
        )
        assert burst.expected_loss == pytest.approx(0.9)

    def test_chain_visits_both_states(self):
        burst = GilbertElliottLoss(p_good_to_bad=0.3, p_bad_to_good=0.3)
        rng = np.random.default_rng(0)
        states = set()
        for _ in range(200):
            burst.next_loss_probability(rng)
            states.add(burst.in_bad_state)
        assert states == {True, False}

    def test_loss_rate_tracks_state(self):
        burst = GilbertElliottLoss(
            p_good_to_bad=1.0, p_bad_to_good=0.0, loss_good=0.1, loss_bad=0.7
        )
        rng = np.random.default_rng(0)
        # First packet flips the chain into (and then keeps it in) bad.
        assert burst.next_loss_probability(rng) == 0.7
        assert burst.in_bad_state

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_good_to_bad=1.5)

    def test_bursty_link_loses_in_bursts(self):
        link = RadioLink(
            corruption_probability=0.0,
            burst=GilbertElliottLoss(
                p_good_to_bad=0.05,
                p_bad_to_good=0.2,
                loss_good=0.0,
                loss_bad=1.0,
            ),
            seed=3,
        )
        outcomes = [link.transmit(message(timestamp=t)).lost for t in range(500)]
        # Losses must exist and cluster: the count of loss *runs* is far
        # below the count of losses for a bursty process.
        n_lost = sum(outcomes)
        runs = sum(
            1
            for i, lost in enumerate(outcomes)
            if lost and (i == 0 or not outcomes[i - 1])
        )
        assert n_lost > 20
        assert runs < n_lost


class TestImpairedLink:
    def test_no_impairments_matches_plain_transmit(self):
        """transmit_all with no impairments must consume the identical
        RNG stream as transmit — calibrated loss patterns stay intact."""
        plain = RadioLink(loss_probability=0.3, corruption_probability=0.1, seed=11)
        rich = RadioLink(loss_probability=0.3, corruption_probability=0.1, seed=11)
        for t in range(300):
            expected = plain.transmit(message(timestamp=float(t)))
            records = rich.transmit_all(message(timestamp=float(t)), now_minutes=float(t))
            assert len(records) == 1
            actual = records[0]
            assert actual.lost == expected.lost
            assert (actual.malformed is None) == (expected.malformed is None)
            assert actual.arrival_minutes is None
            assert not actual.duplicate

    def test_certain_duplication(self):
        link = RadioLink(
            loss_probability=0.0,
            corruption_probability=0.0,
            duplicate_probability=1.0,
            seed=0,
        )
        records = link.transmit_all(message(), now_minutes=0.0)
        assert len(records) == 2
        assert not records[0].duplicate
        assert records[1].duplicate
        assert records[1].message == records[0].message

    def test_lost_packet_is_not_duplicated(self):
        link = RadioLink(
            loss_probability=1.0,
            duplicate_probability=1.0,
            seed=0,
        )
        records = link.transmit_all(message(), now_minutes=0.0)
        assert len(records) == 1
        assert records[0].lost

    def test_certain_delay_bounds(self):
        link = RadioLink(
            loss_probability=0.0,
            corruption_probability=0.0,
            delay_probability=1.0,
            max_delay_minutes=30.0,
            seed=0,
        )
        for t in range(50):
            (record,) = link.transmit_all(message(timestamp=float(t)), now_minutes=float(t))
            assert record.arrival_minutes is not None
            assert t <= record.arrival_minutes <= t + 30.0

    def test_quality_uses_burst_stationary_loss(self):
        burst = GilbertElliottLoss(
            p_good_to_bad=0.1, p_bad_to_good=0.3, loss_good=0.0, loss_bad=0.8
        )
        link = RadioLink(corruption_probability=0.0, burst=burst)
        assert link.quality == pytest.approx(1.0 - burst.expected_loss)

    def test_impaired_star_gives_each_link_its_own_burst_chain(self):
        template = GilbertElliottLoss(start_bad=True)
        network = StarNetwork.impaired([0, 1, 2], burst=template)
        chains = {id(link.burst) for link in network.links.values()}
        assert len(chains) == 3
        assert all(link.burst.in_bad_state for link in network.links.values())

    def test_impaired_star_unknown_mote_is_perfect(self):
        network = StarNetwork.impaired([0], duplicate_probability=1.0)
        records = network.transmit_all(message(sensor_id=99), now_minutes=0.0)
        assert len(records) == 1
        assert records[0].delivered_ok


class TestSimulatorInFlight:
    def _simulator(self, link):
        environment = ConstantEnvironment()
        motes = [Mote(sensor_id=0, environment=environment, seed=1)]
        network = StarNetwork(links={0: link})
        collector = CollectorNode(window_minutes=60.0)
        return NetworkSimulator(
            environment=environment,
            motes=motes,
            collector=collector,
            network=network,
            sample_period_minutes=5.0,
        )

    def test_delayed_packets_arrive_later(self):
        link = RadioLink(
            loss_probability=0.0,
            corruption_probability=0.0,
            delay_probability=1.0,
            max_delay_minutes=20.0,
            seed=2,
        )
        simulator = self._simulator(link)
        simulator.tick(0.0)
        assert simulator.n_in_flight == 1
        assert simulator.collector.stats.accepted == 0
        simulator.tick(25.0)  # all delays are <= 20 minutes
        # The first packet has arrived; the packet sampled at t=25 is the
        # only one still in flight.
        assert simulator.n_in_flight == 1
        assert simulator.collector.stats.accepted == 1

    def test_run_reports_stragglers(self):
        link = RadioLink(
            loss_probability=0.0,
            corruption_probability=0.0,
            delay_probability=1.0,
            max_delay_minutes=500.0,
            seed=2,
        )
        simulator = self._simulator(link)
        report = simulator.run(60.0)
        assert report.n_in_flight_at_end > 0

    def test_perfect_link_never_queues(self):
        link = RadioLink(loss_probability=0.0, corruption_probability=0.0)
        simulator = self._simulator(link)
        report = simulator.run(120.0)
        assert report.n_in_flight_at_end == 0
        assert simulator.collector.stats.accepted == report.n_ticks


class TestChaosSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosSpec(n_days=0)
        with pytest.raises(ValueError):
            ChaosSpec(delay_probability=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(checkpoint_every_windows=-1)

    def test_report_defaults_are_graceful(self):
        report = ChaosReport()
        assert report.graceful
        assert report.degradation_fraction == 0.0


class TestChaosCampaign:
    def test_campaign_with_crash_degrades_gracefully(self):
        spec = ChaosSpec(
            n_days=1,
            seed=5,
            crash_at_windows=(6,),
            checkpoint_every_windows=2,
            clock_skew_minutes={2: -120.0},
        )
        report, pipeline = run_chaos(spec)
        assert report.graceful
        assert report.n_windows_emitted == 24
        assert report.n_crashes == 1
        # Every emitted window is either processed or is the crash window
        # itself; windows rolled back to the last checkpoint are counted
        # as lost *in addition* to having been processed.
        assert (
            report.n_windows_processed + report.n_crashes
            == report.n_windows_emitted
        )
        assert report.n_windows_lost_to_crashes >= report.n_crashes
        assert report.n_checkpoints >= 2
        assert report.checkpoint_bytes > 0
        # The skewed mote's reports land in the late quarantine.
        assert report.delivery["late"] > 0
        assert report.delivery["duplicate"] > 0
        assert 0.0 < report.degradation_fraction < 1.0
        assert pipeline.n_windows > 0

    def test_clean_infrastructure_quarantines_nothing(self):
        spec = ChaosSpec(
            n_days=1,
            seed=5,
            burst=None,
            loss_probability=0.0,
            corruption_probability=0.0,
            delay_probability=0.0,
            duplicate_probability=0.0,
        )
        report, _ = run_chaos(spec)
        assert report.graceful
        assert report.n_crashes == 0
        assert report.delivery["late"] == 0
        assert report.delivery["duplicate"] == 0
        assert report.delivery["non_finite"] == 0
        assert report.delivery["lost"] == 0
        assert report.n_in_flight_at_end == 0
        assert report.degradation_fraction == 0.0

    def test_render_mentions_gracefulness(self):
        spec = ChaosSpec(n_days=1, seed=5)
        report, _ = run_chaos(spec)
        text = report.render()
        assert "graceful" in text
        assert "delivery" in text

    def test_cli_chaos_command(self, capsys):
        exit_code = main(
            [
                "chaos",
                "--days",
                "1",
                "--seed",
                "5",
                "--crash-at",
                "8",
                "--skew",
                "1:-90",
                "--checkpoint-every",
                "3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "chaos campaign report" in captured.out
        assert "graceful" in captured.out

    def test_cli_rejects_bad_skew(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--days", "1", "--skew", "nonsense"])
