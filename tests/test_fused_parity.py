"""Fused engine vs per-window oracle: bit-identical or the test fails.

The struct-of-arrays fast path (``process_windows_fast`` /
``process_trace_fast``) only earns its speedup if it is *exactly* the
per-window pipeline — same digests, same checkpoint snapshots, same
``WindowResult`` stream, under every alarm-filter kind and supervisor
mode.  Every assertion here is exact ``==`` (no tolerances): the fused
engine's certified shortcuts (vector filter banks, incremental
clustering caches, steady-stretch certification) are go/no-go caches
that must never change a single bit of output.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import DetectionPipeline, PipelineConfig
from repro.core.filtering import (
    CUSUMFilter,
    FilterBank,
    KOfNFilter,
    SPRTFilter,
    VectorFilterBank,
)
from repro.sensornet.collector import windows_from_arrays
from repro.traces import GDITraceConfig, generate_gdi_trace_columnar

FILTER_KINDS = ("k_of_n", "sprt", "cusum")
SUPERVISOR_MODES = ("off", "warn", "repair")


def snapshot_json(pipeline: DetectionPipeline) -> str:
    return json.dumps(pipeline.snapshot(), sort_keys=True, default=str)


def assert_engines_identical(config: PipelineConfig, windows) -> None:
    """Run both engines over ``windows``; demand exact equality."""
    oracle = DetectionPipeline(config)
    fused = DetectionPipeline(config)
    oracle_results = oracle.process_windows(windows)
    fused.process_windows_fast(windows)
    fused_results = fused.results
    assert oracle.digest() == fused.digest()
    assert snapshot_json(oracle) == snapshot_json(fused)
    assert len(oracle_results) == len(fused_results)
    for ours, theirs in zip(oracle_results, fused_results):
        assert ours == theirs


def synthetic_windows(
    n_windows: int = 300,
    n_sensors: int = 8,
    n_attributes: int = 2,
    seed: int = 0,
):
    """A hostile 300-window workload exercising the fused edge cases.

    Piecewise-constant environment states with jumps big enough to
    spawn model states (breaking steady stretches), periodic sensor
    dropouts (changing the per-window sensor population), NaN readings
    (quarantined at windowing time), and entirely empty windows.
    """
    rng = np.random.default_rng(seed)
    ts, sids, vals = [], [], []
    for index in range(1, n_windows + 1):
        if index % 57 == 0:
            continue  # an empty window mid-trace
        level = 20.0 + 15.0 * ((index // 30) % 3)
        base = np.array([level, 70.0 - level / 2.0])[:n_attributes]
        for sensor in range(n_sensors):
            if (index + sensor) % 41 == 0:
                continue  # sensor dropout: population changes
            value = base + rng.normal(0.0, 0.3, n_attributes)
            if (index * 13 + sensor) % 97 == 0:
                value = value.copy()
                value[0] = np.nan  # quarantined on windowing
            ts.append((index - 1) * 60.0 + 1.0 + sensor * 1e-3)
            sids.append(sensor)
            vals.append(value)
    ts_arr = np.asarray(ts, dtype=float)
    sid_arr = np.asarray(sids)
    val_arr = np.asarray(vals, dtype=float)
    order = np.lexsort((sid_arr, ts_arr))
    return windows_from_arrays(
        ts_arr[order], sid_arr[order], val_arr[order], 60.0
    )


class TestTraceParity:
    @pytest.mark.parametrize("kind", FILTER_KINDS)
    @pytest.mark.parametrize("mode", SUPERVISOR_MODES)
    def test_gdi_trace(self, kind, mode):
        trace = generate_gdi_trace_columnar(GDITraceConfig(n_days=2, seed=11))
        config = PipelineConfig(filter_kind=kind, supervisor_mode=mode)
        oracle = DetectionPipeline(config)
        fused = DetectionPipeline(config)
        oracle_results = oracle.process_trace(trace)
        fused.process_trace_fast(trace)
        fused_results = fused.results
        assert oracle.digest() == fused.digest()
        assert snapshot_json(oracle) == snapshot_json(fused)
        assert len(oracle_results) == len(fused_results)
        for ours, theirs in zip(oracle_results, fused_results):
            assert ours == theirs


class TestSyntheticEdgeCases:
    @pytest.mark.parametrize("kind", FILTER_KINDS)
    def test_hostile_workload(self, kind):
        windows = synthetic_windows()
        assert_engines_identical(PipelineConfig(filter_kind=kind), windows)

    @pytest.mark.parametrize("mode", ("warn", "repair"))
    def test_hostile_workload_supervised(self, mode):
        windows = synthetic_windows()
        assert_engines_identical(PipelineConfig(supervisor_mode=mode), windows)

    def test_single_attribute(self):
        # d == 1 exercises the pairwise-summation fallback in the
        # batched means kernel (bulk means are only bit-stable for
        # d >= 2) and the scalar steady-stretch arithmetic.
        windows = synthetic_windows(n_attributes=1, seed=3)
        assert_engines_identical(PipelineConfig(), windows)

    def test_empty_input(self):
        config = PipelineConfig()
        fused = DetectionPipeline(config)
        assert fused.process_windows_fast([]) == 0
        assert fused.results == []

    def test_checkpoint_mid_run_resumes_identically(self):
        # A snapshot taken after a fast run must restore into a
        # pipeline that continues exactly like the oracle would.
        windows = synthetic_windows()
        half = len(windows) // 2
        config = PipelineConfig()
        oracle = DetectionPipeline(config)
        oracle.process_windows(windows)

        fused = DetectionPipeline(config)
        fused.process_windows_fast(windows[:half])
        resumed = DetectionPipeline.restore(fused.snapshot(), config=config)
        resumed.process_windows_fast(windows[half:])
        assert resumed.digest() == oracle.digest()
        assert snapshot_json(resumed) == snapshot_json(oracle)


def _scalar_bank(kind: str) -> FilterBank:
    factory = {
        "k_of_n": KOfNFilter,
        "sprt": SPRTFilter,
        "cusum": CUSUMFilter,
    }[kind]
    return FilterBank(factory=factory)


def _vector_bank(kind: str) -> VectorFilterBank:
    prototype = {
        "k_of_n": KOfNFilter,
        "sprt": SPRTFilter,
        "cusum": CUSUMFilter,
    }[kind]()
    return VectorFilterBank.from_prototype(prototype)


def _raw_stream(n_windows: int, n_sensors: int, seed: int = 5):
    rng = np.random.default_rng(seed)
    return rng.random((n_windows, n_sensors)) < 0.4


class TestFilterBankStateDictInterchange:
    """Scalar and vector banks must share one checkpoint format."""

    @pytest.mark.parametrize("kind", FILTER_KINDS)
    def test_state_dicts_match_after_identical_streams(self, kind):
        scalar = _scalar_bank(kind)
        vector = _vector_bank(kind)
        sensor_ids = np.arange(6)
        for index, raws in enumerate(_raw_stream(50, 6)):
            scalar_out = scalar.update(
                index, {int(s): bool(r) for s, r in zip(sensor_ids, raws)}
            )
            vector_out = vector.update_batch(index, sensor_ids, raws)
            assert scalar_out == vector_out
        assert scalar.state_dict() == vector.state_dict()

    @pytest.mark.parametrize("kind", FILTER_KINDS)
    def test_cross_round_trip_continues_identically(self, kind):
        # scalar -> vector and vector -> scalar restores must both
        # continue the stream exactly where the original left off.
        sensor_ids = np.arange(6)
        stream = _raw_stream(80, 6, seed=9)
        scalar = _scalar_bank(kind)
        for index, raws in enumerate(stream[:40]):
            scalar.update(
                index, {int(s): bool(r) for s, r in zip(sensor_ids, raws)}
            )

        vector = _vector_bank(kind)
        vector.load_state_dict(scalar.state_dict())
        assert vector.state_dict() == scalar.state_dict()

        back = _scalar_bank(kind)
        back.load_state_dict(vector.state_dict())
        assert back.state_dict() == scalar.state_dict()

        for index, raws in enumerate(stream[40:], start=40):
            raw_map = {int(s): bool(r) for s, r in zip(sensor_ids, raws)}
            assert (
                scalar.update(index, raw_map)
                == vector.update_batch(index, sensor_ids, raws)
                == back.update(index, raw_map)
            )
        assert scalar.state_dict() == vector.state_dict()
        assert scalar.state_dict() == back.state_dict()

    def test_vector_bank_rejects_mixed_kind_payload(self):
        scalar = FilterBank(factory=KOfNFilter)
        scalar.update(0, {0: True})
        mixed = _scalar_bank("sprt")
        mixed.update(0, {1: True})
        payload = scalar.state_dict()
        payload["filters"].append(mixed.state_dict()["filters"][0])
        vector = _vector_bank("k_of_n")
        with pytest.raises(ValueError):
            vector.load_state_dict(payload)


class TestKOfNRunningCount:
    """The O(1) running count must always equal the ring-buffer sum."""

    def test_count_tracks_window_sum(self):
        filt = KOfNFilter(k=3, n=5)
        rng = np.random.default_rng(13)
        for raw in rng.random(200) < 0.5:
            filt.update(bool(raw))
            assert filt._count == sum(filt._window)
            assert filt.active == (filt._count >= filt.k)

    def test_reset_and_restore_rebuild_count(self):
        filt = KOfNFilter(k=2, n=4)
        for raw in (True, True, False, True):
            filt.update(raw)
        payload = filt.state_dict()
        filt.reset()
        assert filt._count == 0 and not filt.active

        from repro.core.filtering import filter_from_state_dict

        restored = filter_from_state_dict(payload)
        assert restored._count == sum(restored._window)
        assert restored.active
