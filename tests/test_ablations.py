"""Tests for the ablation-study harness (repro.experiments.ablations).

Short-horizon versions of the sweeps the benchmarks run at full length:
these verify the harness mechanics (row shapes, column extraction,
rendering) and the most robust headline directions.
"""

import pytest

from repro.analysis import ConfusionMatrix
from repro.experiments import (
    A5_EQUIVALENCES,
    baseline_comparison,
    classification_matrix,
    dynamic_change_study,
    estimator_comparison,
    filter_comparison,
    learning_factor_sweep,
    window_size_sweep,
)


class TestSweepMechanics:
    @pytest.fixture(scope="class")
    def window_sweep(self):
        return window_size_sweep(sizes=(6, 12), n_days=5)

    def test_one_row_per_parameter_value(self, window_sweep):
        assert len(window_sweep.rows) == 2

    def test_column_extraction(self, window_sweep):
        values = window_sweep.column("w (samples)")
        assert values == [6, 12]

    def test_column_extraction_rejects_unknown(self, window_sweep):
        with pytest.raises(ValueError):
            window_sweep.column("no-such-column")

    def test_render_contains_title_and_headers(self, window_sweep):
        text = window_sweep.render()
        assert "Ablation A1" in text
        assert "model states" in text


class TestLearningFactorSweep:
    def test_clean_run_stable_across_alphas(self):
        result = learning_factor_sweep(alphas=(0.05, 0.25), n_days=5)
        for row in result.rows:
            assert row[1] <= 10  # model states stay bounded
            assert row[3] <= 2  # nearly no spurious tracks


class TestFilterComparison:
    def test_all_filters_detect(self):
        result = filter_comparison(n_days=10)
        assert [row[1] for row in result.rows] == ["yes", "yes", "yes"]

    def test_filter_names_cover_config_kinds(self):
        result = filter_comparison(n_days=10)
        assert [row[0] for row in result.rows] == ["k_of_n", "sprt", "cusum"]


class TestClassificationMatrix:
    @pytest.fixture(scope="class")
    def outcome(self):
        return classification_matrix(n_days=10)

    def test_returns_matrix_and_sweep(self, outcome):
        matrix, sweep = outcome
        assert isinstance(matrix, ConfusionMatrix)
        assert len(sweep.rows) == 8  # eight canonical scenarios

    def test_accuracy_with_equivalences(self, outcome):
        matrix, _ = outcome
        assert matrix.accuracy(A5_EQUIVALENCES) >= 0.7

    def test_fault_scenarios_never_become_attacks(self, outcome):
        matrix, _ = outcome
        attack_labels = {"creation", "deletion", "change", "mixed"}
        for (truth, diagnosed), count in matrix.counts.items():
            if truth in ("stuck_at", "calibration", "additive", "random_noise"):
                assert diagnosed not in attack_labels, (truth, diagnosed)


class TestBaselineComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return baseline_comparison(n_days=10)

    def test_range_check_blind_to_attacks(self, result):
        rows = {row[0]: row for row in result.rows}
        assert rows["deletion"][1] == "blind"
        assert rows["creation"][1] == "blind"

    def test_our_method_types_the_stuck_fault(self, result):
        rows = {row[0]: row for row in result.rows}
        assert "stuck_at" in rows["stuck-at"][5]


class TestDynamicChangeStudy:
    def test_reports_displaced_pairs(self):
        # The wholesale-shift signature needs about two weeks to imprint
        # on the forgetting-factor estimator (same horizon as the bench).
        result = dynamic_change_study(n_days=14)
        assert "change" in result.title
        assert len(result.rows) >= 1


class TestEstimatorComparison:
    def test_paper_estimator_dominates(self):
        result = estimator_comparison(n_days=5)
        masses = {row[0]: float(row[2]) for row in result.rows}
        assert masses["paper (redundancy-aware)"] > masses["general online EM [10]"]
