"""Unit tests for repro.baselines (threshold, majority, chain, HMM)."""

import numpy as np
import pytest

from repro.baselines import (
    MajorityVoteDetector,
    MarkovChainDetector,
    OfflineHMMDetector,
    RangeThresholdDetector,
)
from repro.hmm import DiscreteHMM, sample_sequence
from repro.sensornet import ObservationWindow, SensorMessage


def msg(sensor_id, attrs, t=0.0):
    return SensorMessage(sensor_id=sensor_id, timestamp=t, attributes=attrs)


class TestRangeThresholdDetector:
    def test_in_range_readings_pass(self):
        detector = RangeThresholdDetector()
        assert detector.check(msg(0, (20.0, 75.0))) == []
        assert detector.alarm_rate() == 0.0

    def test_out_of_range_flagged(self):
        detector = RangeThresholdDetector()
        alarms = detector.check(msg(3, (70.0, 75.0)))
        assert len(alarms) == 1
        assert alarms[0].attribute_index == 0
        assert detector.flagged_sensors() == [3]

    def test_both_attributes_can_alarm(self):
        detector = RangeThresholdDetector()
        alarms = detector.check(msg(0, (70.0, 120.0)))
        assert len(alarms) == 2

    def test_margin_tightens_ranges(self):
        detector = RangeThresholdDetector(margin=20.0)
        assert detector.check(msg(0, (55.0, 75.0)))

    def test_in_range_attack_is_invisible(self):
        # The paper's §4.2 point: coordinated attacks stay in-range.
        detector = RangeThresholdDetector()
        detector.check_all([msg(0, (31.0, 12.0)), msg(1, (2.0, 100.0))])
        assert detector.alarms == []

    def test_rejects_dimensionality_mismatch(self):
        with pytest.raises(ValueError):
            RangeThresholdDetector().check(msg(0, (1.0,)))

    def test_rejects_collapsing_margin(self):
        with pytest.raises(ValueError):
            RangeThresholdDetector(margin=60.0)


def build_window(index, readings):
    messages = tuple(
        msg(sid, attrs, t=(index - 1) * 60.0 + 1.0)
        for sid, attrs in sorted(readings.items())
    )
    return ObservationWindow(
        index=index,
        start_minutes=(index - 1) * 60.0,
        end_minutes=index * 60.0,
        messages=messages,
    )


class TestMajorityVoteDetector:
    def test_flags_persistent_outlier(self):
        detector = MajorityVoteDetector()
        for i in range(1, 15):
            readings = {s: (20.0, 75.0) for s in range(5)}
            if i >= 3:
                readings[4] = (55.0, 5.0)
            detector.process_window(build_window(i, readings))
        assert detector.flagged_sensors() == [4]

    def test_healthy_network_unflagged(self):
        detector = MajorityVoteDetector()
        windows = [
            build_window(i, {s: (20.0, 75.0) for s in range(5)})
            for i in range(1, 15)
        ]
        assert detector.process_windows(windows) == []

    def test_empty_windows_skipped(self):
        detector = MajorityVoteDetector()
        detector.process_window(build_window(1, {}))
        assert detector.n_windows == 0


class TestMarkovChainDetector:
    @pytest.fixture
    def trained(self):
        detector = MarkovChainDetector(n_states=3)
        rng = np.random.default_rng(0)
        clean = list(rng.choice([0, 1], size=400, p=[0.7, 0.3]))
        detector.train(clean)
        detector.calibrate_threshold(clean)
        return detector, clean

    def test_training_required_before_scoring(self):
        with pytest.raises(RuntimeError):
            MarkovChainDetector(n_states=2).log_likelihood_per_step([0, 1])

    def test_clean_data_scores_low_alarm_rate(self, trained):
        detector, clean = trained
        assert detector.detection_rate(clean) < 0.05

    def test_unseen_state_detected(self, trained):
        detector, _ = trained
        anomalous = [0, 1, 0, 2, 2, 2, 2, 2, 2, 2]
        assert detector.detection_rate(anomalous) > 0.3

    def test_validates_alphabet(self):
        detector = MarkovChainDetector(n_states=2)
        with pytest.raises(ValueError):
            detector.train([0, 1, 5])

    def test_window_scores_have_positions(self, trained):
        detector, clean = trained
        scores = detector.score_windows(clean[:20], window=6)
        assert [s.start_index for s in scores] == list(range(15))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MarkovChainDetector(n_states=0)
        with pytest.raises(ValueError):
            MarkovChainDetector(n_states=2, smoothing=0.0)


class TestOfflineHMMDetector:
    @pytest.fixture(scope="class")
    def trained(self):
        truth = DiscreteHMM(
            transition=[[0.9, 0.1], [0.1, 0.9]],
            emission=[[0.9, 0.1, 0.0], [0.1, 0.9, 0.0]],
            initial=[0.5, 0.5],
        )
        rng = np.random.default_rng(1)
        clean = sample_sequence(truth, 400, rng).observations
        detector = OfflineHMMDetector(n_hidden=2, n_symbols=3, seed=1)
        detector.train([clean])
        detector.calibrate_threshold(clean)
        return detector, clean

    def test_requires_training(self):
        with pytest.raises(RuntimeError):
            OfflineHMMDetector().score([0, 1])

    def test_clean_data_low_alarm_rate(self, trained):
        detector, clean = trained
        assert detector.detection_rate(clean) < 0.05

    def test_never_seen_symbol_flagged(self, trained):
        detector, _ = trained
        anomalous = [2] * 12
        assert detector.detection_rate(anomalous) > 0.5

    def test_training_result_recorded(self, trained):
        detector, _ = trained
        assert detector.training_result is not None
        assert detector.is_trained
