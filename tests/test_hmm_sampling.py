"""Unit tests for repro.hmm.sampling."""

import numpy as np
import pytest

from repro.hmm import (
    DiscreteHMM,
    empirical_emission,
    sample_markov_chain,
    sample_sequence,
)


class TestSampleSequence:
    def test_shapes(self, rng):
        model = DiscreteHMM.random(3, 5, rng)
        sample = sample_sequence(model, 40, rng)
        assert sample.states.shape == (40,)
        assert sample.observations.shape == (40,)

    def test_alphabet_bounds(self, rng):
        model = DiscreteHMM.random(3, 5, rng)
        sample = sample_sequence(model, 200, rng)
        assert sample.states.min() >= 0 and sample.states.max() < 3
        assert sample.observations.min() >= 0 and sample.observations.max() < 5

    def test_deterministic_given_seed(self):
        model = DiscreteHMM.random(3, 4, np.random.default_rng(5))
        a = sample_sequence(model, 50, np.random.default_rng(9))
        b = sample_sequence(model, 50, np.random.default_rng(9))
        assert np.array_equal(a.observations, b.observations)

    def test_rejects_nonpositive_length(self, rng):
        model = DiscreteHMM.random(2, 2, rng)
        with pytest.raises(ValueError):
            sample_sequence(model, 0, rng)

    def test_identity_emission_aligns_states_and_obs(self, rng):
        model = DiscreteHMM(
            transition=np.full((3, 3), 1.0 / 3.0),
            emission=np.eye(3),
            initial=np.full(3, 1.0 / 3.0),
        )
        sample = sample_sequence(model, 100, rng)
        assert np.array_equal(sample.states, sample.observations)

    def test_empirical_frequencies_approach_model(self, rng):
        model = DiscreteHMM(
            transition=[[0.5, 0.5], [0.5, 0.5]],
            emission=[[0.9, 0.1], [0.1, 0.9]],
            initial=[0.5, 0.5],
        )
        sample = sample_sequence(model, 5000, rng)
        estimate = empirical_emission(sample.states, sample.observations, 2, 2)
        assert np.allclose(estimate, model.emission, atol=0.05)


class TestSampleMarkovChain:
    def test_respects_absorbing_state(self, rng):
        transition = [[0.0, 1.0], [0.0, 1.0]]
        path = sample_markov_chain(transition, [1.0, 0.0], 10, rng)
        assert path[0] == 0
        assert np.all(path[1:] == 1)

    def test_rejects_size_mismatch(self, rng):
        with pytest.raises(ValueError):
            sample_markov_chain(np.eye(3), [0.5, 0.5], 5, rng)

    def test_rejects_nonpositive_length(self, rng):
        with pytest.raises(ValueError):
            sample_markov_chain(np.eye(2), [1.0, 0.0], 0, rng)


class TestEmpiricalEmission:
    def test_rows_are_stochastic(self, rng):
        states = rng.integers(0, 3, size=100)
        obs = rng.integers(0, 4, size=100)
        estimate = empirical_emission(states, obs, 3, 4)
        assert np.allclose(estimate.sum(axis=1), 1.0)

    def test_unvisited_state_is_uniform(self):
        estimate = empirical_emission(
            np.array([0, 0]), np.array([1, 1]), n_states=2, n_symbols=2
        )
        assert np.allclose(estimate[1], 0.5)

    def test_rejects_misaligned_inputs(self):
        with pytest.raises(ValueError):
            empirical_emission(np.array([0]), np.array([0, 1]), 2, 2)
