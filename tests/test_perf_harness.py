"""Perf-regression harness logic (no heavy timing in here)."""

from __future__ import annotations

import json

import pytest

from repro import perf


def _payload(**overrides):
    base = {
        "schema": 7,
        "backend": {
            "numba_available": False,
            "flavors": {"numpy": "numpy", "compiled": "numpy"},
            "kernels": {
                "grouped_sums": {
                    "numpy_us": 25.0,
                    "compiled_us": 24.0,
                    "speedup": 1.04,
                }
            },
            "digest_parity": True,
        },
        "parallel_scaling": {
            "scenarios": ["clean"],
            "n_days": 3,
            "seed": 2003,
            "cpu_count": 2,
            "serial_seconds": 0.1,
            "curve": [
                {
                    "n_workers": 1,
                    "seconds": 0.1,
                    "speedup": 1.0,
                    "efficiency": 1.0,
                }
            ],
            "digest_parity": True,
        },
        "pipeline_us_per_window": 200.0,
        "fused_pipeline_us_per_window": 50.0,
        "hmm_update_us": 3.0,
        "clusterer_update_us": 120.0,
        "filter_bank_us": 11.0,
        "fleet_us_per_deployment_window": 12.0,
        "fleet_isolated_us_per_deployment_window": 12.5,
        "fleet_degradation": {
            "n_tenants": 12,
            "n_windows": 400,
            "checkpoint_interval": 200,
            "raw_us_per_deployment_window": 12.0,
            "isolated_us_per_deployment_window": 12.5,
            "overhead_pct": 4.2,
            "digest_parity": True,
            "isolation_overhead_seconds": {
                "checkpoint_seconds": 0.002,
                "rollback_seconds": 0.0,
                "attribution_seconds": 0.0,
                "recovery_seconds": 0.0,
            },
            "faulted": {
                "n_tenants": 8,
                "n_poisoned": 2,
                "kinds": ["exploding", "malformed", "exception"],
                "quarantined": 2,
                "readmitted": 2,
                "rollbacks": 14,
                "survivors_bit_identical": True,
                "all_faults_handled": True,
            },
        },
        "fleet": {
            "workload": {"n_windows": 400, "dwell": 40, "noise": 0.25},
            "curve": [
                {
                    "n": 64,
                    "fleet_us_per_deployment_window": 12.0,
                    "baseline_us_per_deployment_window": 20.0,
                    "speedup": 1.67,
                    "digest_parity": True,
                }
            ],
            "digest_parity": True,
        },
        "filter_bank": {
            "n_sensors": 50,
            "n_windows": 2000,
            "scalar_us_per_window": 20.0,
            "vector_us_per_window": 11.0,
            "speedup": 1.82,
        },
        "trace_gen_us_per_window": 40.0,
        "trace_generation": {
            "n_days": 3,
            "n_windows": 72,
            "object_us_per_window": 4000.0,
            "columnar_us_per_window": 40.0,
            "speedup": 100.0,
        },
        "campaign": {
            "scenarios": ["clean"],
            "n_days": 3,
            "seed": 2003,
            "n_jobs": 1,
            "serial_seconds": 1.0,
            "parallel_seconds": 1.0,
            "speedup": 1.0,
        },
        "cache": {
            "scenarios": ["clean"],
            "n_days": 3,
            "seed": 2003,
            "cold_seconds": 1.0,
            "hot_seconds": 0.1,
            "speedup": 10.0,
        },
        "baseline_pre_optimization": dict(perf.PRE_OPTIMIZATION_BASELINE),
        "environment": {"python": "3.11", "numpy": "2.0", "cpu_count": 1},
    }
    base.update(overrides)
    return base


def test_compare_clean_run():
    assert perf.compare(_payload(), _payload(), tolerance=0.3) == []


def test_compare_within_tolerance():
    current = _payload(pipeline_us_per_window=200.0 * 1.25)
    assert perf.compare(current, _payload(), tolerance=0.3) == []


def test_compare_flags_regression():
    current = _payload(pipeline_us_per_window=200.0 * 1.5)
    failures = perf.compare(current, _payload(), tolerance=0.3)
    assert len(failures) == 1
    assert "pipeline_us_per_window" in failures[0]


def test_compare_ignores_missing_metrics():
    previous = _payload()
    del previous["hmm_update_us"]
    current = _payload(hmm_update_us=999.0)
    assert perf.compare(current, previous, tolerance=0.3) == []


def test_compare_improvement_never_fails():
    current = _payload(
        pipeline_us_per_window=1.0, hmm_update_us=0.1, clusterer_update_us=1.0
    )
    assert perf.compare(current, _payload(), tolerance=0.0) == []


def test_render_mentions_every_checked_metric():
    text = perf.render(_payload())
    for metric in perf.CHECKED_METRICS:
        assert metric in text
    assert "campaign" in text
    assert "trace gen" in text
    assert "cache" in text


def test_render_tolerates_schema1_payload():
    # --check against an old baseline must not crash the report.
    old = _payload()
    old["schema"] = 1
    del old["trace_generation"]
    del old["cache"]
    del old["trace_gen_us_per_window"]
    text = perf.render(_payload())
    assert perf.compare(_payload(), old, tolerance=0.3) == []
    assert "trace gen" in text


def test_compare_tolerates_schema2_payload():
    # Baselines written before the fused/filter-bank metrics existed
    # must still check cleanly (schema growth never fails old files).
    old = _payload()
    old["schema"] = 2
    del old["fused_pipeline_us_per_window"]
    del old["filter_bank_us"]
    del old["filter_bank"]
    assert perf.compare(_payload(), old, tolerance=0.3) == []


def test_compare_tolerates_schema5_payload():
    # Baselines written before the fleet-isolation metric existed must
    # still check cleanly.
    old = _payload()
    old["schema"] = 5
    del old["fleet_isolated_us_per_deployment_window"]
    del old["fleet_degradation"]
    assert perf.compare(_payload(), old, tolerance=0.3) == []
    # And rendering a payload without the block must not crash.
    assert "fleet isolation" not in perf.render(old)


def test_compare_tolerates_schema6_payload():
    # Baselines written before the backend/scaling blocks existed must
    # still check cleanly, and rendering them must not crash.
    old = _payload()
    old["schema"] = 6
    del old["backend"]
    del old["parallel_scaling"]
    assert perf.compare(_payload(), old, tolerance=0.3) == []
    text = perf.render(old)
    assert "backend numpy vs compiled" not in text
    assert "parallel scaling" not in text


def test_render_mentions_backend_and_scaling_blocks():
    text = perf.render(_payload())
    assert "backend numpy vs compiled" in text
    assert "grouped_sums" in text
    assert "parallel scaling" in text
    assert "1w: 0.1s (eff 1.0)" in text


def test_render_mentions_fleet_isolation_block():
    text = perf.render(_payload())
    assert "fleet isolation" in text
    assert "+4.2% no-fault overhead" in text
    assert "2 quarantined" in text
    assert "survivors bit-identical" in text


def test_bench_hmm_update_returns_microseconds():
    # Tiny workload: this is a plumbing check, not a measurement.
    us = perf.bench_hmm_update(repeats=1, n_updates=50)
    assert 0.0 < us < 1e6


def test_bench_fused_pipeline_returns_microseconds():
    us = perf.bench_fused_pipeline(repeats=1, n_windows=24)
    assert 0.0 < us < 1e6


def test_bench_filter_bank_reports_both_paths():
    result = perf.bench_filter_bank(repeats=1, n_sensors=8, n_windows=60)
    assert 0.0 < result["scalar_us_per_window"] < 1e6
    assert 0.0 < result["vector_us_per_window"] < 1e6
    assert result["speedup"] > 0.0


def test_profile_fused_renders_cumulative_table():
    text = perf.profile_fused(n_windows=24, runs=1, top=5)
    assert "cProfile" in text
    assert "cumulative" in text
    assert "process_windows_fast" in text


def test_parity_command_passes_and_reports_grid():
    text, code = perf.parity_command(n_days=1, seed=7)
    assert code == 0
    assert "parity PASS" in text
    # every filter kind x supervisor mode appears in the grid
    for kind in ("k_of_n", "sprt", "cusum"):
        assert kind in text
    for mode in ("off", "warn", "repair"):
        assert mode in text


def test_check_without_previous_file(tmp_path, monkeypatch):
    monkeypatch.setattr(perf, "run_bench", lambda **kw: _payload())
    text, code = perf.bench_command(
        output=str(tmp_path / "missing.json"), check=True
    )
    assert code == 0
    assert "nothing to check" in text


def test_write_then_check_round_trip(tmp_path, monkeypatch):
    monkeypatch.setattr(perf, "run_bench", lambda **kw: _payload())
    output = str(tmp_path / "bench.json")
    text, code = perf.bench_command(output=output, check=False)
    assert code == 0
    with open(output, encoding="utf-8") as fh:
        assert json.load(fh)["pipeline_us_per_window"] == 200.0

    text, code = perf.bench_command(output=output, check=True)
    assert code == 0
    assert "no regressions" in text

    slow = _payload(clusterer_update_us=120.0 * 2)
    monkeypatch.setattr(perf, "run_bench", lambda **kw: slow)
    text, code = perf.bench_command(output=output, check=True)
    assert code == 1
    assert "REGRESSIONS" in text
    # --check must never overwrite the baseline it compared against.
    with open(output, encoding="utf-8") as fh:
        assert json.load(fh)["clusterer_update_us"] == 120.0


def test_checked_metrics_present_in_real_schema():
    for metric in perf.CHECKED_METRICS:
        assert metric in perf.PRE_OPTIMIZATION_BASELINE


@pytest.mark.parametrize("argv", [["bench", "--tolerance", "0.5"]])
def test_cli_parses_bench_flags(argv):
    from repro.cli import build_parser

    args = build_parser().parse_args(argv)
    assert args.command == "bench"
    assert args.tolerance == 0.5
    assert args.jobs == 0
    assert args.profile is False


def test_cli_parses_bench_profile_and_parity():
    from repro.cli import build_parser

    args = build_parser().parse_args(["bench", "--profile"])
    assert args.profile is True

    args = build_parser().parse_args(["parity", "--days", "2", "--seed", "9"])
    assert args.command == "parity"
    assert args.days == 2
    assert args.seed == 9
    assert args.backend == "numpy"

    args = build_parser().parse_args(["parity", "--backend", "compiled"])
    assert args.backend == "compiled"


def test_parity_command_accepts_backend():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        text, code = perf.parity_command(n_days=1, seed=7, backend="compiled")
    assert code == 0
    assert "backend compiled" in text
    assert "parity PASS" in text


def test_bench_backends_reports_kernels_and_parity():
    result = perf.bench_backends(repeats=1)
    assert set(result["kernels"]) == {
        "grouped_sums",
        "pairwise_distances",
        "batched_distances",
        "k_of_n_lockstep",
        "sprt_step",
        "cusum_step",
    }
    for row in result["kernels"].values():
        assert row["numpy_us"] > 0.0
        assert row["compiled_us"] > 0.0
    assert result["digest_parity"] is True
    assert result["flavors"]["compiled"] in ("numpy", "numba")


def test_environment_info_is_json_ready():
    info = perf.environment_info(threads_pinned=True)
    json.dumps(info)  # must be serializable as-is
    assert info["threads_pinned_during_timing"] is True
    assert "numba" in info and "blas" in info and "thread_env" in info
