"""Unit tests for repro.analysis (k-means, metrics, reporting)."""

import numpy as np
import pytest

from repro.analysis import (
    ConfusionMatrix,
    alarm_rates,
    discretize,
    false_alarm_rate,
    initial_states_from_trace,
    kmeans,
    render_alarm_series,
    render_emission_matrix,
    render_kv,
    render_markov_model,
    render_table,
    state_label,
    summarize_detection,
)
from repro.analysis.metrics import DetectionOutcome
from repro.core.classification import AnomalyType, Diagnosis
from repro.core.markov import estimate_markov_model
from repro.core.online_hmm import EmissionMatrix


class TestKMeans:
    def blobs(self, rng):
        a = rng.normal([0.0, 0.0], 0.3, size=(50, 2))
        b = rng.normal([10.0, 10.0], 0.3, size=(50, 2))
        c = rng.normal([0.0, 10.0], 0.3, size=(50, 2))
        return np.vstack([a, b, c])

    def test_recovers_well_separated_blobs(self, rng):
        result = kmeans(self.blobs(rng), k=3, seed=0)
        centers = sorted(map(tuple, np.round(result.centers)))
        assert centers == [(0.0, 0.0), (0.0, 10.0), (10.0, 10.0)]

    def test_labels_consistent_with_centers(self, rng):
        points = self.blobs(rng)
        result = kmeans(points, k=3, seed=0)
        for point, label in zip(points, result.labels):
            distances = np.linalg.norm(result.centers - point, axis=1)
            assert label == np.argmin(distances)

    def test_deterministic_given_seed(self, rng):
        points = self.blobs(rng)
        a = kmeans(points, 3, seed=4)
        b = kmeans(points, 3, seed=4)
        assert np.allclose(a.centers, b.centers)

    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((2, 2)), k=3)

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), k=0)

    def test_initial_states_sorted_by_first_attribute(self, rng):
        points = self.blobs(rng)
        states = initial_states_from_trace(points, 3, seed=1)
        assert list(states[:, 0]) == sorted(states[:, 0])

    def test_discretize_maps_to_nearest(self):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        labels = discretize(np.array([[1.0, 1.0], [9.0, 9.0]]), centers)
        assert list(labels) == [0, 1]


class TestDetectionMetrics:
    def outcome(self, sensor_id, corrupted, detected, det=None, onset=None):
        return DetectionOutcome(
            sensor_id=sensor_id,
            corrupted=corrupted,
            detected=detected,
            detection_window=det,
            onset_window=onset,
        )

    def test_summary_counts(self):
        outcomes = [
            self.outcome(0, True, True, det=10, onset=5),
            self.outcome(1, True, False),
            self.outcome(2, False, True, det=3),
            self.outcome(3, False, False),
        ]
        summary = summarize_detection(outcomes)
        assert summary.true_positives == 1
        assert summary.false_negatives == 1
        assert summary.false_positives == 1
        assert summary.true_negatives == 1
        assert summary.precision == pytest.approx(0.5)
        assert summary.recall == pytest.approx(0.5)
        assert summary.mean_latency_windows == pytest.approx(5.0)

    def test_perfect_scores_on_empty(self):
        summary = summarize_detection([])
        assert summary.precision == 1.0
        assert summary.recall == 1.0
        assert summary.mean_latency_windows is None

    def test_latency_never_negative(self):
        outcome = self.outcome(0, True, True, det=3, onset=8)
        assert outcome.latency_windows == 0


class TestConfusionMatrix:
    def test_accuracy_with_equivalences(self):
        matrix = ConfusionMatrix()
        matrix.record("stuck_at", AnomalyType.STUCK_AT)
        matrix.record("drift", AnomalyType.STUCK_AT)
        matrix.record("calibration", AnomalyType.UNKNOWN_ERROR)
        assert matrix.accuracy() == pytest.approx(1.0 / 3.0)
        assert matrix.accuracy({"drift": "stuck_at"}) == pytest.approx(2.0 / 3.0)

    def test_record_diagnoses_handles_missed_detection(self):
        matrix = ConfusionMatrix()
        matrix.record_diagnoses(
            {1: "stuck_at", 2: "additive"},
            {1: Diagnosis(anomaly_type=AnomalyType.STUCK_AT, sensor_id=1)},
        )
        assert matrix.counts[("stuck_at", "stuck_at")] == 1
        assert matrix.counts[("additive", "none")] == 1

    def test_as_array_shape(self):
        matrix = ConfusionMatrix()
        matrix.record("a", AnomalyType.STUCK_AT)
        matrix.record("b", AnomalyType.ADDITIVE)
        array, truths, labels = matrix.as_array()
        assert array.shape == (2, 2)
        assert array.sum() == 2

    def test_empty_accuracy_is_zero(self):
        assert ConfusionMatrix().accuracy() == 0.0


class TestPipelineMetrics:
    def test_alarm_and_false_alarm_rates(self, stuck_run):
        pipeline = stuck_run.pipeline
        rates = alarm_rates(pipeline)
        assert set(rates) == set(range(10))
        healthy = false_alarm_rate(pipeline, corrupted_sensors=[6])
        assert healthy < 0.05
        assert rates[6] > 10 * healthy


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["x", "y"], ["longer", "z"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_state_label(self):
        vectors = {0: np.array([12.4, 94.2])}
        assert state_label(0, vectors) == "(12,94)"
        assert state_label(-1, vectors) == "⊥"
        assert state_label(5, vectors) == "s5"

    def test_render_emission_matrix_contains_labels(self):
        emission = EmissionMatrix(
            matrix=np.array([[1.0, 0.0]]), state_ids=(0,), symbol_ids=(0, 1)
        )
        vectors = {0: np.array([12.0, 94.0]), 1: np.array([31.0, 56.0])}
        text = render_emission_matrix(emission, vectors, title="T")
        assert "(12,94)" in text and "(31,56)" in text and "T" in text

    def test_render_markov_model(self):
        model = estimate_markov_model([0, 1, 0, 1])
        text = render_markov_model(model, title="M_C")
        assert "M_C" in text and "visits" in text

    def test_render_alarm_series_rate(self):
        text = render_alarm_series([True, False, False, False], width=4)
        assert "25.0%" in text

    def test_render_alarm_series_empty(self):
        assert "(empty)" in render_alarm_series([])

    def test_render_kv(self):
        text = render_kv({"alpha": 0.1, "beta": 0.9}, title="params")
        assert "params" in text and "alpha" in text
