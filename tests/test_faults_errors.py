"""Unit tests for repro.faults.errors (accidental-fault models)."""

import numpy as np
import pytest

from repro.faults import (
    ActivationSchedule,
    AdditiveFault,
    CalibrationFault,
    DriftFault,
    IntermittentFault,
    PacketDropper,
    RandomNoiseFault,
    StuckAtFault,
    clip_to_ranges,
)
from repro.sensornet import SensorMessage

TRUTH = np.array([20.0, 75.0])


def msg(attrs=(20.5, 74.5)) -> SensorMessage:
    return SensorMessage(sensor_id=0, timestamp=100.0, attributes=attrs)


class TestActivationSchedule:
    def test_always_active_by_default(self):
        schedule = ActivationSchedule()
        assert schedule.active_at(0.0)
        assert schedule.active_at(1e9)

    def test_respects_bounds(self):
        schedule = ActivationSchedule(start_minutes=10.0, end_minutes=20.0)
        assert not schedule.active_at(9.9)
        assert schedule.active_at(10.0)
        assert schedule.active_at(19.9)
        assert not schedule.active_at(20.0)

    def test_elapsed(self):
        schedule = ActivationSchedule(start_minutes=10.0)
        assert schedule.elapsed(5.0) == 0.0
        assert schedule.elapsed(25.0) == 15.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            ActivationSchedule(start_minutes=10.0, end_minutes=5.0)


class TestClipToRanges:
    def test_clips_each_attribute(self):
        out = clip_to_ranges(np.array([100.0, -5.0]), ((-10, 60), (0, 100)))
        assert np.allclose(out, [60.0, 0.0])

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            clip_to_ranges(np.array([1.0]), ((-10, 60), (0, 100)))


class TestStuckAtFault:
    def test_always_reports_stuck_value(self):
        fault = StuckAtFault(value=(15.0, 1.0))
        out = fault.corrupt(msg(), TRUTH, 0.0)
        assert out.attributes == (15.0, 1.0)

    def test_not_malicious(self):
        assert not StuckAtFault().malicious
        assert StuckAtFault().kind == "stuck_at"

    def test_rejects_dimension_mismatch(self):
        fault = StuckAtFault(value=(15.0,))
        with pytest.raises(ValueError):
            fault.corrupt(msg(), TRUTH, 0.0)


class TestCalibrationFault:
    def test_scales_own_reading(self):
        fault = CalibrationFault(gains=(2.0, 0.5))
        out = fault.corrupt(msg((10.0, 80.0)), TRUTH, 0.0)
        assert np.allclose(out.vector, [20.0, 40.0])

    def test_rejects_nonpositive_gain(self):
        with pytest.raises(ValueError):
            CalibrationFault(gains=(0.0, 1.0))

    def test_default_matches_paper_sensor7(self):
        fault = CalibrationFault()
        out = fault.corrupt(msg((24.8, 70.0)), TRUTH, 0.0)
        assert out.vector[0] == pytest.approx(24.8 / 1.24)
        assert out.vector[1] == pytest.approx(70.0 * 1.16)


class TestAdditiveFault:
    def test_shifts_own_reading(self):
        fault = AdditiveFault(offsets=(5.0, -10.0))
        out = fault.corrupt(msg((20.0, 75.0)), TRUTH, 0.0)
        assert np.allclose(out.vector, [25.0, 65.0])


class TestRandomNoiseFault:
    def test_zero_mean_high_variance(self):
        fault = RandomNoiseFault(noise_std=8.0, seed=1)
        deltas = np.vstack(
            [
                fault.corrupt(msg((20.0, 75.0)), TRUTH, 0.0).vector
                - np.array([20.0, 75.0])
                for _ in range(2000)
            ]
        )
        assert np.allclose(deltas.mean(axis=0), 0.0, atol=0.6)
        assert np.allclose(deltas.std(axis=0), 8.0, atol=0.6)

    def test_rejects_nonpositive_std(self):
        with pytest.raises(ValueError):
            RandomNoiseFault(noise_std=0.0)


class TestDriftFault:
    def test_starts_near_reading_ends_at_terminal(self):
        fault = DriftFault(terminal=(15.0, 1.0), ramp_minutes=100.0)
        start = fault.corrupt(msg((20.0, 75.0)), TRUTH, 0.0)
        end = fault.corrupt(msg((20.0, 75.0)), TRUTH, 100.0)
        assert np.allclose(start.vector, [20.0, 75.0])
        assert np.allclose(end.vector, [15.0, 1.0])

    def test_half_way_is_midpoint(self):
        fault = DriftFault(terminal=(10.0, 0.0), ramp_minutes=100.0)
        mid = fault.corrupt(msg((20.0, 100.0)), TRUTH, 50.0)
        assert np.allclose(mid.vector, [15.0, 50.0])

    def test_saturates_after_ramp(self):
        fault = DriftFault(terminal=(15.0, 1.0), ramp_minutes=10.0)
        late = fault.corrupt(msg((20.0, 75.0)), TRUTH, 1e6)
        assert np.allclose(late.vector, [15.0, 1.0])


class TestPacketDropper:
    def test_drops_expected_fraction(self):
        dropper = PacketDropper(
            inner=StuckAtFault(value=(15.0, 1.0)), drop_probability=0.5, seed=2
        )
        outcomes = [dropper.corrupt(msg(), TRUTH, 0.0) for _ in range(2000)]
        delivered = [o for o in outcomes if o is not None]
        assert 850 < len(delivered) < 1150
        assert all(o.attributes == (15.0, 1.0) for o in delivered)

    def test_kind_and_maliciousness_delegate_to_inner(self):
        dropper = PacketDropper(inner=CalibrationFault())
        assert dropper.kind == "calibration"
        assert not dropper.malicious

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            PacketDropper(drop_probability=1.0)


class TestIntermittentFault:
    def test_duty_cycle_mixes_clean_and_faulty(self):
        fault = IntermittentFault(
            inner=StuckAtFault(value=(0.0, 0.0)), duty_cycle=0.5, seed=3
        )
        outputs = [fault.corrupt(msg(), TRUTH, 0.0) for _ in range(1000)]
        stuck = sum(1 for o in outputs if o.attributes == (0.0, 0.0))
        assert 400 < stuck < 600

    def test_kind_is_prefixed(self):
        assert IntermittentFault().kind == "intermittent_stuck_at"
