"""Object vs columnar parity: the fast path must match the oracle bitwise.

The columnar generator (:mod:`repro.traces.columnar`) only earns its
speedup if it is *exactly* the object-path simulation — same RNG
streams, same float arithmetic, same quarantine decisions.  Every test
here asserts bit-for-bit equality (``==`` on floats, not ``allclose``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DetectionPipeline, PipelineConfig
from repro.faults import (
    ActivationSchedule,
    AdditiveFault,
    BenignAttack,
    CalibrationFault,
    DriftFault,
    DynamicChangeAttack,
    DynamicCreationAttack,
    DynamicDeletionAttack,
    FaultInjector,
    IntermittentFault,
    MixedAttack,
    PacketDropper,
    RandomNoiseFault,
    StuckAtFault,
)
from repro.sensornet import (
    CollectorNode,
    GilbertElliottLoss,
    Mote,
    NetworkSimulator,
    StarNetwork,
)
from repro.traces import (
    GDITraceConfig,
    build_environment,
    generate_gdi_trace,
    generate_gdi_trace_columnar,
    simulate_windows_columnar,
    window_trace,
    window_trace_columnar,
)


def assert_traces_identical(object_trace, columnar_trace) -> None:
    """Record-for-record bitwise equality, plus metadata."""
    converted = columnar_trace.to_trace()
    assert len(converted.records) == len(object_trace.records)
    for ours, oracle in zip(converted.records, object_trace.records):
        assert ours.sensor_id == oracle.sensor_id
        assert ours.timestamp == oracle.timestamp  # bitwise, no tolerance
        assert ours.attributes == oracle.attributes
    assert converted.attribute_names == object_trace.attribute_names
    assert converted.metadata == object_trace.metadata


class TestCleanTraceParity:
    def test_default_config_small(self):
        config = GDITraceConfig(n_days=2, seed=5)
        assert_traces_identical(
            generate_gdi_trace(config), generate_gdi_trace_columnar(config)
        )

    def test_alternate_knobs(self):
        config = GDITraceConfig(
            n_sensors=4,
            n_days=1,
            sample_period_minutes=7.0,
            noise_std=1.1,
            loss_probability=0.3,
            corruption_probability=0.05,
            seed=99,
        )
        assert_traces_identical(
            generate_gdi_trace(config), generate_gdi_trace_columnar(config)
        )

    def test_delivered_arrays_match_messages(self):
        config = GDITraceConfig(n_days=1, seed=3)
        trace = generate_gdi_trace_columnar(config)
        timestamps, sensor_ids, values = trace.delivered_arrays()
        records = trace.to_trace().records
        assert timestamps.shape == (len(records),)
        assert values.shape == (len(records), trace.n_attributes)
        for row, record in enumerate(records):
            assert timestamps[row] == record.timestamp
            assert int(sensor_ids[row]) == record.sensor_id
            assert tuple(values[row]) == record.attributes


def _make_injector(environment, name: str) -> FaultInjector:
    """Fresh injector per path — corruptors carry private RNG state."""
    injector = FaultInjector(environment=environment)
    if name == "stuck":
        injector.add(StuckAtFault(), [6])
    elif name == "calibration":
        injector.add(CalibrationFault(), [7])
    elif name == "additive":
        injector.add(AdditiveFault(), [2])
    elif name == "random_noise":
        injector.add(RandomNoiseFault(), [1, 4])
    elif name == "drift":
        injector.add(DriftFault(ramp_minutes=12 * 60.0), [5])
    elif name == "dropper":
        injector.add(PacketDropper(), [3])
    elif name == "intermittent":
        injector.add(IntermittentFault(), [0])
    elif name == "creation":
        injector.add(DynamicCreationAttack(), [1, 5, 8])
    elif name == "deletion":
        injector.add(DynamicDeletionAttack(), [0, 4, 7])
    elif name == "change":
        injector.add(DynamicChangeAttack(), [2, 6, 9])
    elif name == "mixed":
        injector.add(MixedAttack(), [3, 5, 8])
    elif name == "benign":
        injector.add(BenignAttack(), [1, 2, 3])
    elif name == "scheduled":
        injector.add(
            StuckAtFault(),
            [6],
            ActivationSchedule(start_minutes=6 * 60.0, end_minutes=18 * 60.0),
        )
    elif name == "overlap":
        # First match wins on sensor 6; second entry still hits 7.
        injector.add(StuckAtFault(), [6])
        injector.add(CalibrationFault(), [6, 7])
    else:  # pragma: no cover - test bug
        raise AssertionError(f"unknown injector fixture {name}")
    return injector


CORRUPTION_NAMES = [
    "stuck",
    "calibration",
    "additive",
    "random_noise",
    "drift",
    "dropper",
    "intermittent",
    "creation",
    "deletion",
    "change",
    "mixed",
    "benign",
    "scheduled",
    "overlap",
]


class TestCorruptionParity:
    @pytest.mark.parametrize("name", CORRUPTION_NAMES)
    def test_injected_trace_and_event_log(self, name):
        config = GDITraceConfig(n_days=1, seed=17)
        environment = build_environment(config)
        injector_object = _make_injector(environment, name)
        injector_columnar = _make_injector(environment, name)

        object_trace = generate_gdi_trace(config, corruption=injector_object)
        columnar_trace = generate_gdi_trace_columnar(
            config, corruption=injector_columnar
        )
        assert_traces_identical(object_trace, columnar_trace)
        # Ground-truth logs must agree too: same events, same order.
        assert injector_columnar.events == injector_object.events


def _object_impaired_run(
    *,
    n_sensors,
    n_days,
    seed,
    window_minutes,
    loss_probability,
    corruption_probability,
    burst,
    delay_probability,
    max_delay_minutes,
    duplicate_probability,
    injector_name,
    clock_skew_minutes,
):
    """The oracle: a live simulator run against an impaired star."""
    config = GDITraceConfig(n_days=n_days, seed=seed)
    environment = build_environment(config)
    motes = [
        Mote(sensor_id=s, environment=environment, seed=seed)
        for s in range(n_sensors)
    ]
    network = StarNetwork.impaired(
        range(n_sensors),
        loss_probability=loss_probability,
        corruption_probability=corruption_probability,
        burst=burst,
        delay_probability=delay_probability,
        max_delay_minutes=max_delay_minutes,
        duplicate_probability=duplicate_probability,
        seed=seed,
    )
    injector = (
        _make_injector(environment, injector_name) if injector_name else None
    )
    skews = clock_skew_minutes or {}

    def corruption(message):
        if injector is not None:
            message = injector(message)
            if message is None:
                return None
        skew = skews.get(message.sensor_id)
        if skew:
            message = message.shifted(skew)
        return message

    simulator = NetworkSimulator(
        environment=environment,
        motes=motes,
        collector=CollectorNode(window_minutes=window_minutes),
        network=network,
        corruption=corruption,
    )
    report = simulator.run(config.duration_minutes)
    return report, simulator.collector.stats, injector


IMPAIRMENT_CASES = {
    "iid-loss-only": dict(),
    "burst": dict(burst=GilbertElliottLoss()),
    "delay-reorder": dict(delay_probability=0.25, max_delay_minutes=90.0),
    "duplicates": dict(duplicate_probability=0.15),
    "skew": dict(clock_skew_minutes={0: -30.0, 3: 12.5, 5: 90.0}),
    "everything": dict(
        burst=GilbertElliottLoss(),
        delay_probability=0.15,
        max_delay_minutes=120.0,
        duplicate_probability=0.1,
        clock_skew_minutes={1: -45.0, 4: 20.0},
        injector_name="mixed",
    ),
}


class TestImpairedSimulationParity:
    @pytest.mark.parametrize("case", sorted(IMPAIRMENT_CASES))
    def test_windows_and_stats(self, case):
        params = dict(
            n_sensors=6,
            n_days=1,
            seed=31,
            window_minutes=60.0,
            loss_probability=0.15,
            corruption_probability=0.02,
            burst=None,
            delay_probability=0.0,
            max_delay_minutes=0.0,
            duplicate_probability=0.0,
            injector_name=None,
            clock_skew_minutes=None,
        )
        params.update(IMPAIRMENT_CASES[case])

        report, stats, _ = _object_impaired_run(**params)

        config = GDITraceConfig(n_days=params["n_days"], seed=params["seed"])
        environment = build_environment(config)
        injector = (
            _make_injector(environment, params["injector_name"])
            if params["injector_name"]
            else None
        )
        result = simulate_windows_columnar(
            environment,
            n_sensors=params["n_sensors"],
            duration_minutes=config.duration_minutes,
            window_minutes=params["window_minutes"],
            seed=params["seed"],
            loss_probability=params["loss_probability"],
            corruption_probability=params["corruption_probability"],
            burst=params["burst"],
            delay_probability=params["delay_probability"],
            max_delay_minutes=params["max_delay_minutes"],
            duplicate_probability=params["duplicate_probability"],
            corruption=injector,
            clock_skew_minutes=params["clock_skew_minutes"],
        )

        assert len(result.windows) == len(report.windows)
        for ours, oracle in zip(result.windows, report.windows):
            assert ours.index == oracle.index
            assert ours.start_minutes == oracle.start_minutes
            assert ours.end_minutes == oracle.end_minutes
            assert ours.sensor_ids == oracle.sensor_ids
            oracle_obs = oracle.observations
            assert ours.observations.shape == oracle_obs.shape
            assert np.array_equal(ours.observations, oracle_obs)
            if not ours.is_empty:
                oracle_means = oracle.per_sensor_mean()
                ours_means = ours.per_sensor_mean()
                assert list(ours_means) == list(oracle_means)
                for sensor_id, mean in oracle_means.items():
                    assert np.array_equal(ours_means[sensor_id], mean)
        assert result.stats == stats
        assert result.n_ticks == report.n_ticks
        assert result.end_minutes == report.end_minutes
        assert result.n_in_flight_at_end == report.n_in_flight_at_end


class TestPipelineParity:
    def test_digest_identical_across_data_paths(self):
        config = GDITraceConfig(n_days=2, seed=7)
        environment = build_environment(config)
        object_trace = generate_gdi_trace(
            config, corruption=_make_injector(environment, "stuck")
        )
        columnar_trace = generate_gdi_trace_columnar(
            config, corruption=_make_injector(environment, "stuck")
        )

        pipeline_config = PipelineConfig()

        object_pipeline = DetectionPipeline(pipeline_config)
        for window in window_trace(
            object_trace, pipeline_config.window_minutes
        ):
            object_pipeline.process_window(window)

        trace_pipeline = DetectionPipeline(pipeline_config)
        trace_pipeline.process_trace(object_trace)

        columnar_pipeline = DetectionPipeline(pipeline_config)
        columnar_pipeline.process_trace(columnar_trace)

        assert object_pipeline.n_windows == columnar_pipeline.n_windows
        assert (
            object_pipeline.digest()
            == trace_pipeline.digest()
            == columnar_pipeline.digest()
        )


class TestEnvironmentBatching:
    def test_values_at_matches_scalar_calls(self):
        config = GDITraceConfig(n_days=2, seed=13)
        environment = build_environment(config)
        times = np.concatenate(
            [np.linspace(0.0, config.duration_minutes, 257), [0.0, 5.0]]
        )
        batched = environment.values_at(times)
        for k, minutes in enumerate(times):
            assert np.array_equal(batched[k], environment.value_at(minutes))


class TestCopyOnWriteGuard:
    def test_columnar_trace_arrays_are_frozen(self):
        trace = generate_gdi_trace_columnar(GDITraceConfig(n_days=1, seed=2))
        for array in (
            trace.tick_times,
            trace.sensor_ids,
            trace.values,
            trace.delivered,
            trace.lost,
            trace.malformed,
            trace.duplicated,
        ):
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[(0,) * array.ndim] = 0

    def test_window_views_are_frozen(self):
        trace = generate_gdi_trace_columnar(GDITraceConfig(n_days=1, seed=2))
        windows = window_trace_columnar(trace, 60.0)
        assert windows, "expected at least one window"
        for window in windows:
            assert not window.observations.flags.writeable
            assert not window.sensor_id_array.flags.writeable
        with pytest.raises(ValueError):
            windows[0].observations[0, 0] = 1.0

    def test_frozen_views_share_storage(self):
        # The point of the guard: windows are views, not copies.
        trace = generate_gdi_trace_columnar(GDITraceConfig(n_days=1, seed=2))
        timestamps, _, values = trace.delivered_arrays()
        windows = window_trace_columnar(trace, 60.0)
        non_empty = [w for w in windows if not w.is_empty]
        assert non_empty
        assert any(
            np.shares_memory(w.observations, values) for w in non_empty
        )
