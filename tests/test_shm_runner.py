"""Shared-memory campaign transport: round-trips, lifetime, parity.

The campaign parent publishes cached traces into shared-memory
segments and workers replay them from tiny descriptors; everything
here pins the two contracts that makes that safe — the views are
zero-copy and read-only, and a shm-backed pool campaign reproduces the
serial digests bit-for-bit (with ``from_cache`` still reporting hits,
which the CLI's cache stats line is computed from).
"""

import pickle

import numpy as np
import pytest

from repro.experiments import ScenarioSpec
from repro.experiments.runner import (
    resolve_chunk_size,
    run_campaign,
)
from repro.experiments.shm import (
    attach_entry,
    publish_entry,
    release_segments,
)
from repro.traces.cache import CachedTrace


@pytest.fixture
def entry():
    rng = np.random.default_rng(17)
    return CachedTrace(
        timestamps=np.arange(30.0) * 60.0,
        sensor_ids=np.tile(np.arange(3, dtype=np.int64), 10),
        values=rng.normal(size=(30, 2)),
        attribute_names=("temperature", "humidity"),
        metadata={"n_days": 1.0},
        ground_truth={2: "stuck-at"},
        label="demo",
    )


class TestPublishAttach:
    def test_round_trip_preserves_everything(self, entry):
        segment, descriptor = publish_entry(entry)
        try:
            back = attach_entry(descriptor)
            assert np.array_equal(back.timestamps, entry.timestamps)
            assert np.array_equal(back.sensor_ids, entry.sensor_ids)
            assert np.array_equal(back.values, entry.values)
            assert back.timestamps.dtype == entry.timestamps.dtype
            assert back.sensor_ids.dtype == entry.sensor_ids.dtype
            assert back.attribute_names == entry.attribute_names
            assert back.metadata == entry.metadata
            assert back.ground_truth == entry.ground_truth
            assert back.label == entry.label
        finally:
            release_segments([segment])

    def test_attached_views_are_zero_copy_and_read_only(self, entry):
        segment, descriptor = publish_entry(entry)
        try:
            back = attach_entry(descriptor)
            for array in (back.timestamps, back.sensor_ids, back.values):
                assert not array.flags.owndata
                assert not array.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                back.values[0, 0] = 99.0
        finally:
            release_segments([segment])

    def test_descriptor_is_small_and_picklable(self, entry):
        """Workers receive offsets and names, never the grids."""
        segment, descriptor = publish_entry(entry)
        try:
            payload = pickle.dumps(descriptor)
            assert len(payload) < 2048
            assert pickle.loads(payload) == descriptor
        finally:
            release_segments([segment])

    def test_release_is_idempotent(self, entry):
        segment, _ = publish_entry(entry)
        release_segments([segment])
        release_segments([segment])  # second unlink must not raise


class TestChunkSizing:
    def test_default_keeps_small_campaigns_single_chunk(self):
        assert resolve_chunk_size(None, 2) == 8
        assert resolve_chunk_size(None, 4) == 16

    def test_explicit_chunk_size_wins(self):
        assert resolve_chunk_size(3, 8) == 3


class TestShmCampaignParity:
    @pytest.fixture(scope="class")
    def specs(self):
        return [
            ScenarioSpec("clean", n_days=2, seed=7),
            ScenarioSpec("stuck_at", n_days=2, seed=7),
        ]

    def test_hot_pool_campaign_matches_serial(self, tmp_path, specs):
        cache_dir = tmp_path / "cache"
        cold = run_campaign(specs, n_jobs=2, cache_dir=cache_dir)
        assert [o.from_cache for o in cold.outcomes] == [False, False]

        serial = run_campaign(specs, n_jobs=1, cache_dir=cache_dir)
        hot = run_campaign(specs, n_jobs=2, cache_dir=cache_dir)
        # The shm replay path must still report cache hits — the CLI
        # cache stats line is computed from these flags.
        assert [o.from_cache for o in hot.outcomes] == [True, True]
        assert [o.digest for o in hot.outcomes] == [
            o.digest for o in serial.outcomes
        ]
        assert [o.digest for o in cold.outcomes] == [
            o.digest for o in serial.outcomes
        ]

    def test_chunked_scheduling_matches_serial(self, tmp_path, specs):
        cache_dir = tmp_path / "cache"
        serial = run_campaign(specs, n_jobs=1, cache_dir=cache_dir)
        chunked = run_campaign(
            specs, n_jobs=2, cache_dir=cache_dir, chunk_size=1
        )
        assert [o.digest for o in chunked.outcomes] == [
            o.digest for o in serial.outcomes
        ]
        assert [o.from_cache for o in chunked.outcomes] == [True, True]

    def test_shm_disabled_still_matches(self, tmp_path, specs):
        cache_dir = tmp_path / "cache"
        serial = run_campaign(specs, n_jobs=1, cache_dir=cache_dir)
        plain = run_campaign(
            specs, n_jobs=2, cache_dir=cache_dir, use_shared_memory=False
        )
        assert [o.digest for o in plain.outcomes] == [
            o.digest for o in serial.outcomes
        ]
        assert [o.from_cache for o in plain.outcomes] == [True, True]

    def test_no_segments_leak(self, tmp_path, specs):
        from pathlib import Path

        shm_root = Path("/dev/shm")
        if not shm_root.is_dir():
            pytest.skip("no /dev/shm on this platform")
        before = set(shm_root.glob("psm_*"))
        cache_dir = tmp_path / "cache"
        run_campaign(specs, n_jobs=1, cache_dir=cache_dir)
        run_campaign(specs, n_jobs=2, cache_dir=cache_dir)
        leaked = set(shm_root.glob("psm_*")) - before
        assert not leaked
