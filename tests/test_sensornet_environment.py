"""Unit tests for repro.sensornet.environment (Θ(t) models)."""

import numpy as np
import pytest

from repro.sensornet import (
    MINUTES_PER_DAY,
    ConstantEnvironment,
    GDIDiurnalEnvironment,
    PiecewiseRegimeEnvironment,
)


class TestConstantEnvironment:
    def test_never_changes(self):
        env = ConstantEnvironment(attributes=(5.0, 50.0))
        assert np.allclose(env.value_at(0.0), env.value_at(1e6))

    def test_n_attributes(self):
        assert ConstantEnvironment().n_attributes == 2


class TestPiecewiseRegimeEnvironment:
    def test_steps_through_regimes_in_order(self):
        env = PiecewiseRegimeEnvironment(
            regimes=[(1.0, 1.0), (2.0, 2.0)], dwell_minutes=10.0
        )
        assert np.allclose(env.value_at(0.0), [1.0, 1.0])
        assert np.allclose(env.value_at(10.0), [2.0, 2.0])

    def test_cycles_by_default(self):
        env = PiecewiseRegimeEnvironment(
            regimes=[(1.0,), (2.0,)], dwell_minutes=5.0
        )
        assert np.allclose(env.value_at(10.0), [1.0])

    def test_holds_last_when_not_cycling(self):
        env = PiecewiseRegimeEnvironment(
            regimes=[(1.0,), (2.0,)], dwell_minutes=5.0, cycle=False
        )
        assert np.allclose(env.value_at(1000.0), [2.0])

    def test_regime_index(self):
        env = PiecewiseRegimeEnvironment(
            regimes=[(1.0,), (2.0,), (3.0,)], dwell_minutes=60.0
        )
        assert env.regime_index_at(59.9) == 0
        assert env.regime_index_at(60.0) == 1
        assert env.regime_index_at(180.0) == 0  # cycles

    def test_rejects_empty_regimes(self):
        with pytest.raises(ValueError):
            PiecewiseRegimeEnvironment(regimes=[])

    def test_rejects_mixed_dimensionality(self):
        with pytest.raises(ValueError):
            PiecewiseRegimeEnvironment(regimes=[(1.0,), (1.0, 2.0)])


class TestGDIDiurnalEnvironment:
    def test_temperature_within_plausible_band(self):
        env = GDIDiurnalEnvironment(n_days=7)
        temps = [env.temperature_at(m) for m in range(0, 7 * MINUTES_PER_DAY, 30)]
        assert min(temps) > env.temp_min - 10
        assert max(temps) < env.temp_max + 10

    def test_diurnal_cycle_peaks_in_afternoon(self):
        env = GDIDiurnalEnvironment(front_scale=0.0)
        morning = env.temperature_at(5 * 60.0)
        afternoon = env.temperature_at(17 * 60.0)
        assert afternoon > morning + 15

    def test_humidity_anticorrelated_with_temperature(self):
        env = GDIDiurnalEnvironment(n_days=3)
        minutes = np.arange(0, 3 * MINUTES_PER_DAY, 15.0)
        values = np.vstack([env.value_at(m) for m in minutes])
        corr = np.corrcoef(values[:, 0], values[:, 1])[0, 1]
        assert corr < -0.95

    def test_humidity_clipped_to_physical_range(self):
        env = GDIDiurnalEnvironment(n_days=3, front_scale=10.0)
        minutes = np.arange(0, 3 * MINUTES_PER_DAY, 15.0)
        humidity = np.array([env.value_at(m)[1] for m in minutes])
        assert humidity.min() >= 0.0
        assert humidity.max() <= 100.0

    def test_deterministic_given_seed(self):
        a = GDIDiurnalEnvironment(seed=11)
        b = GDIDiurnalEnvironment(seed=11)
        assert np.allclose(a.value_at(12345.0), b.value_at(12345.0))

    def test_different_seeds_give_different_fronts(self):
        a = GDIDiurnalEnvironment(seed=1, n_days=5)
        b = GDIDiurnalEnvironment(seed=2, n_days=5)
        samples_a = [a.temperature_at(m) for m in range(0, 5000, 100)]
        samples_b = [b.temperature_at(m) for m in range(0, 5000, 100)]
        assert not np.allclose(samples_a, samples_b)

    def test_rejects_inverted_temperature_bounds(self):
        with pytest.raises(ValueError):
            GDIDiurnalEnvironment(temp_min=30.0, temp_max=10.0)

    def test_rejects_nonpositive_days(self):
        with pytest.raises(ValueError):
            GDIDiurnalEnvironment(n_days=0)

    def test_front_offset_is_smooth_between_days(self):
        env = GDIDiurnalEnvironment(n_days=5, seed=3)
        # Offsets 1 minute apart should differ by far less than the
        # front scale (linear interpolation between daily values).
        a = env._front_offset(2 * MINUTES_PER_DAY - 1)
        b = env._front_offset(2 * MINUTES_PER_DAY + 1)
        assert abs(a - b) < 0.1
