"""Smoke tests: the example scripts run end to end and tell the truth.

The two heavyweight paper-study examples (habitat_monitoring,
attack_forensics) are exercised through their underlying experiment
functions elsewhere; here the three fast examples run as a user would
run them.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    """Execute an example as __main__ and capture its stdout."""
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestQuickstart:
    def test_runs_and_diagnoses_stuck_sensor(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "sensor 6: error / stuck_at" in out
        assert "system-level verdict: none" in out
        assert "M_C states" in out


class TestLiveDeployment:
    def test_streams_and_diagnoses_drift(self, capsys):
        out = run_example("live_deployment.py", capsys)
        assert "filtered alarm RAISED for sensor 4" in out
        assert "sensor 4: error / stuck_at" in out
        assert "delivery:" in out


class TestClusterMonitoring:
    def test_reports_all_three_incidents(self, capsys):
        out = run_example("cluster_monitoring.py", capsys)
        assert "memory leak on replica 4" in out
        assert "replica 4 diagnosis: stuck_at" in out
        assert "system verdict: deletion" in out


class TestExamplesAreListed:
    def test_every_example_file_has_a_main_guard(self):
        for path in sorted(EXAMPLES.glob("*.py")):
            text = path.read_text()
            assert '__name__ == "__main__"' in text, path.name
            assert text.startswith("#!/usr/bin/env python3"), path.name
