"""Unit tests for repro.sensornet.sensor (motes and batteries)."""

import numpy as np
import pytest

from repro.sensornet import BatteryModel, ConstantEnvironment, Mote


class TestBatteryModel:
    def test_starts_alive(self):
        assert BatteryModel().alive

    def test_drains_and_dies(self):
        battery = BatteryModel(
            initial_charge=1.0, drain_per_sample=0.3, shutdown_threshold=0.05
        )
        battery.consume()
        battery.consume()
        battery.consume()
        battery.consume()
        assert not battery.alive
        assert battery.charge == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BatteryModel(initial_charge=0.0)
        with pytest.raises(ValueError):
            BatteryModel(drain_per_sample=-1.0)


class TestMote:
    def test_sample_is_truth_plus_noise(self):
        env = ConstantEnvironment(attributes=(20.0, 75.0))
        mote = Mote(sensor_id=0, environment=env, noise_std=0.5, seed=1)
        readings = np.vstack([mote.sample(float(t)).vector for t in range(500)])
        assert np.allclose(readings.mean(axis=0), [20.0, 75.0], atol=0.2)
        assert np.allclose(readings.std(axis=0), 0.5, atol=0.1)

    def test_noiseless_mote_reports_exact_truth(self):
        env = ConstantEnvironment(attributes=(20.0, 75.0))
        mote = Mote(sensor_id=0, environment=env, noise_std=0.0)
        assert np.allclose(mote.sample(0.0).vector, [20.0, 75.0])

    def test_sequence_numbers_increment(self):
        mote = Mote(sensor_id=0, environment=ConstantEnvironment())
        first = mote.sample(0.0)
        second = mote.sample(5.0)
        assert second.sequence_number == first.sequence_number + 1

    def test_dead_battery_stops_reporting(self):
        battery = BatteryModel(
            initial_charge=0.2, drain_per_sample=0.1, shutdown_threshold=0.05
        )
        mote = Mote(
            sensor_id=0, environment=ConstantEnvironment(), battery=battery
        )
        results = [mote.sample(float(t)) for t in range(5)]
        assert results[0] is not None
        assert results[-1] is None

    def test_skip_probability_drops_samples(self):
        mote = Mote(
            sensor_id=0,
            environment=ConstantEnvironment(),
            skip_probability=0.5,
            seed=3,
        )
        produced = sum(mote.sample(float(t)) is not None for t in range(1000))
        assert 380 < produced < 620

    def test_independent_streams_per_mote(self):
        env = ConstantEnvironment()
        a = Mote(sensor_id=0, environment=env, seed=7)
        b = Mote(sensor_id=1, environment=env, seed=7)
        ra = np.vstack([a.sample(float(t)).vector for t in range(50)])
        rb = np.vstack([b.sample(float(t)).vector for t in range(50)])
        assert not np.allclose(ra, rb)

    def test_deterministic_given_seed_and_id(self):
        env = ConstantEnvironment()
        a = Mote(sensor_id=4, environment=env, seed=7)
        b = Mote(sensor_id=4, environment=env, seed=7)
        assert np.allclose(a.sample(0.0).vector, b.sample(0.0).vector)

    def test_rejects_bad_parameters(self):
        env = ConstantEnvironment()
        with pytest.raises(ValueError):
            Mote(sensor_id=0, environment=env, noise_std=-1.0)
        with pytest.raises(ValueError):
            Mote(sensor_id=0, environment=env, skip_probability=1.0)
