"""End-to-end attack scenarios: the §4.2 reproduction assertions."""

import numpy as np
import pytest

from repro.core.classification import AnomalyCategory, AnomalyType
from repro.core.orthogonality import analyze_orthogonality


def b_co(run):
    pipeline = run.pipeline
    min_visits = pipeline.config.classifier.min_state_visits
    return pipeline.m_co.emission_matrix(
        min_state_visits=min_visits, min_symbol_visits=min_visits
    )


class TestDynamicDeletion:
    def test_system_verdict(self, deletion_run):
        assert (
            deletion_run.pipeline.system_diagnosis().anomaly_type
            is AnomalyType.DYNAMIC_DELETION
        )

    def test_rows_non_orthogonal_columns_orthogonal(self, deletion_run):
        report = analyze_orthogonality(b_co(deletion_run).denoised(0.2))
        assert not report.rows_orthogonal
        assert report.max_row_cross > 0.7  # near-total collapse

    def test_compromised_sensors_all_tracked(self, deletion_run):
        compromised = set(deletion_run.campaign.malicious_sensor_ids())
        tracked = {t.sensor_id for t in deletion_run.pipeline.tracks.tracks}
        assert compromised <= tracked

    def test_per_sensor_diagnosis_is_deletion(self, deletion_run):
        for sensor_id in deletion_run.campaign.malicious_sensor_ids():
            diagnosis = deletion_run.pipeline.diagnose_sensor(sensor_id)
            assert diagnosis is not None
            assert diagnosis.anomaly_type is AnomalyType.DYNAMIC_DELETION
            assert diagnosis.category is AnomalyCategory.ATTACK

    def test_deleted_state_absent_from_observables(self, deletion_run):
        diagnosis = deletion_run.pipeline.system_diagnosis()
        pairs = diagnosis.evidence.get("deletion_pairs", ())
        assert pairs
        deleted_state, surviving_state = pairs[0]
        vectors = deletion_run.pipeline.state_vectors()
        # The deleted state is the hottest; the surviving one is milder.
        assert vectors[deleted_state][0] > vectors[surviving_state][0]


class TestDynamicCreation:
    def test_system_verdict(self, creation_run):
        assert (
            creation_run.pipeline.system_diagnosis().anomaly_type
            is AnomalyType.DYNAMIC_CREATION
        )

    def test_created_state_is_spurious_symbol(self, creation_run):
        emission = b_co(creation_run)
        diagnosis = creation_run.pipeline.system_diagnosis()
        pairs = diagnosis.evidence.get("creation_pairs", ())
        assert pairs
        _, created_symbol = pairs[0]
        assert created_symbol not in emission.state_ids  # never correct

    def test_row_splits_like_paper_table7(self, creation_run):
        # Paper Table 7: row (12,95) splits 0.35/0.65 between its own
        # symbol and the created one.
        emission = b_co(creation_run).denoised(0.1)
        diagnosis = creation_run.pipeline.system_diagnosis()
        source, created = diagnosis.evidence["creation_pairs"][0]
        row = emission.row_of(source)
        symbols = {s: k for k, s in enumerate(emission.symbol_ids)}
        own = row[symbols[source]]
        spurious = row[symbols[created]]
        assert own > 0.15 and spurious > 0.15
        assert own + spurious > 0.8

    def test_per_sensor_diagnosis_is_creation(self, creation_run):
        for sensor_id in creation_run.campaign.malicious_sensor_ids():
            diagnosis = creation_run.pipeline.diagnose_sensor(sensor_id)
            assert diagnosis.anomaly_type is AnomalyType.DYNAMIC_CREATION


class TestDynamicChange:
    def test_system_verdict(self, change_run):
        assert (
            change_run.pipeline.system_diagnosis().anomaly_type
            is AnomalyType.DYNAMIC_CHANGE
        )

    def test_changed_pairs_displaced_in_all_attributes(self, change_run):
        diagnosis = change_run.pipeline.system_diagnosis()
        vectors = change_run.pipeline.state_vectors()
        changed = diagnosis.evidence.get("changed_pairs", ())
        assert changed
        for state_id, symbol_id in changed:
            displacement = np.abs(vectors[state_id] - vectors[symbol_id])
            assert np.all(displacement >= 2.0)

    def test_b_co_stays_orthogonal(self, change_run):
        # The paper: a change attack "does not affect the orthogonality
        # of rows and columns of B^CO".
        report = analyze_orthogonality(b_co(change_run).denoised(0.2))
        assert report.rows_orthogonal


class TestMixedAttack:
    def test_system_verdict(self, mixed_run):
        assert (
            mixed_run.pipeline.system_diagnosis().anomaly_type
            is AnomalyType.MIXED
        )

    def test_both_structures_present(self, mixed_run):
        diagnosis = mixed_run.pipeline.system_diagnosis()
        assert diagnosis.evidence.get("creation_pairs")
        assert diagnosis.evidence.get("deletion_pairs")


class TestAttackerStealthiness:
    def test_all_malicious_values_in_admissible_range(self, deletion_run):
        # §4.2: injected values stay within physical ranges, so range
        # checking cannot catch them.
        for record in deletion_run.trace.records:
            assert -10.0 <= record.attributes[0] <= 60.0
            assert 0.0 <= record.attributes[1] <= 100.0

    def test_creation_values_in_admissible_range(self, creation_run):
        for record in creation_run.trace.records:
            assert -10.0 <= record.attributes[0] <= 60.0
            assert 0.0 <= record.attributes[1] <= 100.0
