"""Tests for the runtime invariant supervisor, the majority-assumption
meta-alarm, and the invariant registry's checks and repairs."""

import json

import numpy as np
import pytest

from repro import DetectionPipeline, PipelineConfig
from repro.resilience.checkpoint import restore, snapshot
from repro.resilience.invariants import (
    DEFAULT_INVARIANTS,
    InvariantViolationError,
    InvariantWarning,
    check_invariants,
)
from repro.resilience.supervisor import PipelineSupervisor
from repro.sensornet import ObservationWindow, SensorMessage
from repro.traces.schema import Trace, TraceRecord


def window(index, readings, minutes_per_window=60.0):
    """Build a window from {sensor_id: (temp, humidity)}."""
    start = (index - 1) * minutes_per_window
    messages = tuple(
        SensorMessage(
            sensor_id=sid, timestamp=start + 1.0, attributes=tuple(attrs)
        )
        for sid, attrs in sorted(readings.items())
    )
    return ObservationWindow(
        index=index,
        start_minutes=start,
        end_minutes=start + minutes_per_window,
        messages=messages,
        n_attributes=2,
    )


def healthy_readings(value=(20.0, 75.0), n_sensors=8):
    return {i: value for i in range(n_sensors)}


def split_readings(n_sensors=8):
    """A coordinated corruption: sensors split across four distant
    positions so no cluster holds a majority."""
    positions = [(20.0, 75.0), (120.0, 5.0), (-80.0, 160.0), (220.0, -60.0)]
    return {
        i: positions[i % len(positions)] for i in range(n_sensors)
    }


def supervised_config(mode="warn", k=3, recovery=3):
    return PipelineConfig(
        supervisor_mode=mode,
        supervisor_majority_windows=k,
        supervisor_recovery_windows=recovery,
    )


class TestConfig:
    def test_default_mode_off_builds_no_supervisor(self):
        assert DetectionPipeline(PipelineConfig()).supervisor is None

    def test_active_mode_builds_supervisor(self):
        pipeline = DetectionPipeline(supervised_config("warn"))
        assert isinstance(pipeline.supervisor, PipelineSupervisor)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="supervisor_mode"):
            PipelineConfig(supervisor_mode="panic")

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(supervisor_majority_windows=0)
        with pytest.raises(ValueError):
            PipelineConfig(supervisor_recovery_windows=0)

    def test_config_round_trips_supervisor_fields(self):
        config = supervised_config("repair", k=5, recovery=2)
        rebuilt = PipelineConfig.from_json_dict(config.to_json_dict())
        assert rebuilt.supervisor_mode == "repair"
        assert rebuilt.supervisor_majority_windows == 5
        assert rebuilt.supervisor_recovery_windows == 2


class TestHealthyStream:
    def test_no_violations_no_alarms_on_healthy_stream(self):
        pipeline = DetectionPipeline(supervised_config("warn"))
        for i in range(1, 20):
            pipeline.process_window(window(i, healthy_readings()))
        assert pipeline.supervisor.violations == []
        assert pipeline.supervisor.meta_alarms == []
        assert not pipeline.supervisor.learning_frozen

    def test_supervised_run_matches_unsupervised_behaviour(self):
        """With no violation and no meta-alarm, supervision is inert:
        sequences, models, and diagnoses match the unsupervised run."""
        plain = DetectionPipeline(PipelineConfig())
        watched = DetectionPipeline(supervised_config("warn"))
        for i in range(1, 25):
            readings = healthy_readings()
            if i > 10:
                readings[3] = (90.0, 10.0)  # one faulty sensor: minority
            plain.process_window(window(i, readings))
            watched.process_window(window(i, readings))
        assert plain.correct_sequence == watched.correct_sequence
        assert plain.observable_sequence == watched.observable_sequence
        assert plain.m_co.state_dict() == watched.m_co.state_dict()
        assert watched.supervisor.meta_alarms == []


class TestMajorityMetaAlarm:
    def test_meta_alarm_raises_and_freezes_learning(self):
        pipeline = DetectionPipeline(supervised_config("warn", k=3))
        for i in range(1, 11):
            pipeline.process_window(window(i, healthy_readings()))
        updates_before = pipeline.m_co.n_updates
        sequence_before = len(pipeline.correct_sequence)

        results = []
        for i in range(11, 17):
            results.append(
                pipeline.process_window(window(i, split_readings()))
            )
        supervisor = pipeline.supervisor
        assert supervisor.learning_frozen
        assert len(supervisor.meta_alarms) == 1
        alarm = supervisor.meta_alarms[0]
        assert alarm.is_active
        assert alarm.raised_window == 13  # k=3rd consecutive bad window
        # The first two bad windows still learned; from the k-th on the
        # beta/gamma updates and sequence appends are frozen.
        assert pipeline.m_co.n_updates == updates_before + 2
        assert len(pipeline.correct_sequence) == sequence_before + 2
        assert [r.learning_frozen for r in results] == [
            False, False, True, True, True, True,
        ]

    def test_meta_alarm_clears_and_learning_resumes(self):
        pipeline = DetectionPipeline(supervised_config("warn", k=3, recovery=2))
        for i in range(1, 6):
            pipeline.process_window(window(i, healthy_readings()))
        for i in range(6, 11):
            pipeline.process_window(window(i, split_readings()))
        assert pipeline.supervisor.learning_frozen
        frozen_updates = pipeline.m_co.n_updates

        recovery_results = []
        for i in range(11, 16):
            recovery_results.append(
                pipeline.process_window(window(i, healthy_readings()))
            )
        supervisor = pipeline.supervisor
        assert not supervisor.learning_frozen
        alarm = supervisor.meta_alarms[0]
        assert alarm.cleared_window == 12  # 2nd consecutive healthy window
        assert not alarm.is_active
        # The clearing window itself learns again.
        assert pipeline.m_co.n_updates == frozen_updates + 4
        assert recovery_results[0].learning_frozen
        assert not recovery_results[1].learning_frozen

    def test_short_majority_dips_do_not_alarm(self):
        pipeline = DetectionPipeline(supervised_config("warn", k=3))
        for i in range(1, 20):
            readings = (
                split_readings() if i % 3 == 0 else healthy_readings()
            )
            pipeline.process_window(window(i, readings))
        assert pipeline.supervisor.meta_alarms == []

    def test_detection_continues_while_frozen(self):
        """Alarm generation and filtering keep running under freeze."""
        pipeline = DetectionPipeline(supervised_config("warn", k=1))
        for i in range(1, 6):
            pipeline.process_window(window(i, healthy_readings()))
        n_results = 0
        for i in range(6, 14):
            result = pipeline.process_window(window(i, split_readings()))
            assert result.learning_frozen
            assert result.identification is not None
            n_results += 1
        assert n_results == 8


class TestFrozenCheckpoint:
    def test_degraded_checkpoint_round_trips_exactly(self):
        """A checkpoint taken while learning is frozen restores frozen,
        with the meta-alarm active, and continues identically."""
        pipeline = DetectionPipeline(supervised_config("warn", k=2, recovery=3))
        for i in range(1, 8):
            pipeline.process_window(window(i, healthy_readings()))
        for i in range(8, 12):
            pipeline.process_window(window(i, split_readings()))
        assert pipeline.supervisor.learning_frozen

        payload = json.loads(json.dumps(snapshot(pipeline), sort_keys=True))
        rebuilt = restore(payload)
        assert rebuilt.supervisor is not None
        assert rebuilt.supervisor.learning_frozen
        assert len(rebuilt.supervisor.meta_alarms) == 1
        assert rebuilt.supervisor.meta_alarms[0].is_active
        assert rebuilt.digest() == pipeline.digest()

        # Continuing both on the same stream (recovery included) stays
        # bit-identical through the digest.
        for i in range(12, 20):
            readings = healthy_readings() if i >= 14 else split_readings()
            pipeline.process_window(window(i, readings))
            rebuilt.process_window(window(i, readings))
        assert rebuilt.digest() == pipeline.digest()
        assert not pipeline.supervisor.learning_frozen
        assert not rebuilt.supervisor.learning_frozen


class TestInvariantChecks:
    def build_pipeline(self, mode="warn", windows=6):
        pipeline = DetectionPipeline(supervised_config(mode))
        for i in range(1, windows + 1):
            readings = healthy_readings()
            if i >= 3:
                readings[5] = (95.0, 5.0)  # keeps a track open
            pipeline.process_window(window(i, readings))
        return pipeline

    def test_healthy_pipeline_has_no_violations(self):
        pipeline = self.build_pipeline()
        assert check_invariants(pipeline) == []

    def test_registry_names(self):
        names = [inv.name for inv in DEFAULT_INVARIANTS]
        assert names == [
            "finite-state-centroids",
            "state-count-bound",
            "alias-acyclicity",
            "row-stochastic-models",
            "bounded-track-lengths",
        ]

    def test_non_finite_centroid_detected_and_repaired(self):
        pipeline = self.build_pipeline(mode="repair")
        states = pipeline.clusterer.states
        poisoned_id = states.state_ids[-1]
        states.update_vector(poisoned_id, np.array([np.nan, np.inf]))
        violations = check_invariants(pipeline)
        assert any(
            v.invariant == "finite-state-centroids" for v in violations
        )
        recorded = pipeline.supervisor.after_window(pipeline)
        assert any("expelled" in v.action for v in recorded)
        assert check_invariants(pipeline) == []
        # The expelled id still resolves (aliased to a finite survivor).
        resolved = pipeline.clusterer.resolve(poisoned_id)
        assert np.all(
            np.isfinite(pipeline.clusterer.state_vector(resolved))
        )

    def test_all_centroids_poisoned_clears_clusterer(self):
        pipeline = self.build_pipeline(mode="repair")
        states = pipeline.clusterer.states
        for state_id in list(states.state_ids):
            states.update_vector(state_id, np.array([np.nan, np.nan]))
        pipeline.supervisor.after_window(pipeline)
        assert pipeline.clusterer is None
        # The next window re-bootstraps and processes normally.
        result = pipeline.process_window(window(50, healthy_readings()))
        assert not result.skipped
        assert pipeline.clusterer is not None

    def test_state_count_overflow_detected_and_merged(self):
        pipeline = self.build_pipeline(mode="repair")
        clusterer = pipeline.clusterer
        rng = np.random.default_rng(7)
        while clusterer.n_states <= clusterer.max_states:
            clusterer.states.spawn(rng.uniform(-500, 500, size=2))
        violations = check_invariants(pipeline)
        assert any(v.invariant == "state-count-bound" for v in violations)
        pipeline.supervisor.after_window(pipeline)
        assert clusterer.n_states <= clusterer.max_states
        assert check_invariants(pipeline) == []

    def test_alias_cycle_detected_and_repaired(self):
        pipeline = self.build_pipeline(mode="repair")
        states = pipeline.clusterer.states
        states._aliases[9001] = 9002
        states._aliases[9002] = 9001
        violations = check_invariants(pipeline)
        assert any(v.invariant == "alias-acyclicity" for v in violations)
        pipeline.supervisor.after_window(pipeline)
        assert check_invariants(pipeline) == []
        assert states.resolve(9001) in states._states

    def test_degenerate_hmm_row_renormalized(self):
        pipeline = self.build_pipeline(mode="repair")
        pipeline.m_co._emission[0] *= 0.5  # near-degenerate row
        violations = check_invariants(pipeline)
        assert any(
            v.invariant == "row-stochastic-models" for v in violations
        )
        recorded = pipeline.supervisor.after_window(pipeline)
        assert any("renormalized" in v.action for v in recorded)
        assert pipeline.m_co.is_row_stochastic()

    def test_poisoned_hmm_reinitialized_to_identity(self):
        pipeline = self.build_pipeline(mode="repair")
        pipeline.m_co._emission[:] = np.nan
        recorded = pipeline.supervisor.after_window(pipeline)
        assert any("identity" in v.action for v in recorded)
        assert pipeline.m_co.is_row_stochastic()
        matrix, _ = pipeline.m_co.transition_matrix()
        assert np.allclose(matrix, np.eye(matrix.shape[0]))

    def test_overlong_track_detected_and_truncated(self):
        pipeline = self.build_pipeline(mode="repair")
        track = pipeline.tracks.tracks[0]
        correct = pipeline.correct_sequence[-1]
        for _ in range(50):  # far more than windows elapsed
            track.record(correct, correct + 1)
        violations = check_invariants(pipeline)
        assert any(
            v.invariant == "bounded-track-lengths" for v in violations
        )
        pipeline.supervisor.after_window(pipeline)
        assert check_invariants(pipeline) == []
        assert track.length <= pipeline.n_windows
        assert track.model.is_row_stochastic()
        assert track.model.n_updates == track.length


class TestModes:
    def corrupt(self, pipeline):
        states = pipeline.clusterer.states
        states.update_vector(
            states.state_ids[0], np.array([np.nan, np.nan])
        )

    def build(self, mode):
        pipeline = DetectionPipeline(supervised_config(mode))
        for i in range(1, 4):
            pipeline.process_window(window(i, healthy_readings()))
        return pipeline

    def test_warn_mode_warns_and_records(self):
        pipeline = self.build("warn")
        self.corrupt(pipeline)
        with pytest.warns(InvariantWarning, match="finite-state-centroids"):
            pipeline.process_window(window(4, healthy_readings()))
        assert any(
            v.invariant == "finite-state-centroids"
            for v in pipeline.supervisor.violations
        )

    def test_raise_mode_raises(self):
        pipeline = self.build("raise")
        self.corrupt(pipeline)
        with pytest.raises(InvariantViolationError, match="finite-state"):
            pipeline.process_window(window(4, healthy_readings()))

    def test_repair_mode_heals_in_stride(self):
        pipeline = self.build("repair")
        self.corrupt(pipeline)
        result = pipeline.process_window(window(4, healthy_readings()))
        assert not result.skipped
        assert check_invariants(pipeline) == []
        assert pipeline.supervisor.violations  # recorded with action
        assert all(v.action for v in pipeline.supervisor.violations)


class TestDegenerateWindowsEndToEnd:
    def trace_with_gaps(self):
        """A trace whose windowing yields empty and single-sensor
        windows: hour 1 full, hour 2 empty (gap), hour 3 single-sensor,
        hours 4-6 full again."""
        records = []
        for hour, minute in [(0, m) for m in range(0, 60, 5)]:
            for sensor in range(6):
                records.append(
                    TraceRecord(
                        sensor_id=sensor,
                        timestamp=hour * 60.0 + minute,
                        attributes=(20.0 + 0.01 * sensor, 75.0),
                    )
                )
        # hour 1 (minutes 60-120): nothing delivered at all.
        for minute in range(0, 60, 5):  # hour 2: one sensor only
            records.append(
                TraceRecord(
                    sensor_id=2,
                    timestamp=120.0 + minute,
                    attributes=(20.02, 75.0),
                )
            )
        for hour in (3, 4, 5):
            for minute in range(0, 60, 5):
                for sensor in range(6):
                    records.append(
                        TraceRecord(
                            sensor_id=sensor,
                            timestamp=hour * 60.0 + minute,
                            attributes=(20.0 + 0.01 * sensor, 75.0),
                        )
                    )
        return Trace(records=records)

    @pytest.mark.parametrize("mode", ["off", "warn", "repair"])
    def test_process_trace_handles_gap_and_single_sensor(self, mode):
        config = PipelineConfig(supervisor_mode=mode)
        pipeline = DetectionPipeline(config)
        results = pipeline.process_trace(self.trace_with_gaps())
        assert len(results) == 6
        assert results[1].skipped  # the empty window
        assert not results[2].skipped  # the single-sensor window
        assert results[2].identification.n_sensors == 1
        if pipeline.supervisor is not None:
            assert pipeline.supervisor.violations == []

    def test_empty_window_shape_contract(self):
        """Hand-built (0, n_attributes) windows pass the supervised
        pipeline and the invariant checks."""
        pipeline = DetectionPipeline(supervised_config("raise"))
        empty = window(1, {})
        assert empty.observations.shape == (0, 2)
        result = pipeline.process_window(empty)
        assert result.skipped
        pipeline.process_window(window(2, {0: (20.0, 75.0)}))
        assert check_invariants(pipeline) == []


class TestSupervisorStateDict:
    def test_round_trip(self):
        supervisor = PipelineSupervisor(mode="warn", majority_windows=2)
        pipeline = DetectionPipeline(supervised_config("warn", k=2))
        for i in range(1, 4):
            pipeline.process_window(window(i, split_readings()))
        state = pipeline.supervisor.state_dict()
        state = json.loads(json.dumps(state, sort_keys=True))
        supervisor.load_state_dict(state)
        assert supervisor.learning_frozen == pipeline.supervisor.learning_frozen
        assert supervisor.state_dict() == pipeline.supervisor.state_dict()
        assert (
            supervisor.digest_payload()
            == pipeline.supervisor.digest_payload()
        )
