"""Unit tests for repro.core.orthogonality (the §3.4 structural tests)."""

import numpy as np
import pytest

from repro.core.online_hmm import EmissionMatrix
from repro.core.orthogonality import (
    analyze_orthogonality,
    column_gram,
    has_all_ones_column,
    row_gram,
)


def emission(matrix, states=None, symbols=None) -> EmissionMatrix:
    matrix = np.asarray(matrix, dtype=float)
    return EmissionMatrix(
        matrix=matrix,
        state_ids=tuple(states or range(matrix.shape[0])),
        symbol_ids=tuple(symbols or range(matrix.shape[1])),
    )


class TestGrams:
    def test_row_gram_of_identity(self):
        assert np.allclose(row_gram(np.eye(3)), np.eye(3))

    def test_column_gram_of_identity(self):
        assert np.allclose(column_gram(np.eye(3)), np.eye(3))

    def test_row_gram_detects_shared_symbol(self):
        matrix = np.array([[0.0, 1.0], [0.0, 1.0]])
        gram = row_gram(matrix)
        assert gram[0, 1] == pytest.approx(1.0)

    def test_column_gram_detects_split_row(self):
        matrix = np.array([[0.35, 0.65]])
        gram = column_gram(matrix)
        assert gram[0, 1] == pytest.approx(0.35 * 0.65)


class TestAnalyzeOrthogonality:
    def test_identity_is_fully_orthogonal(self):
        report = analyze_orthogonality(emission(np.eye(4)))
        assert report.fully_orthogonal
        assert report.max_row_cross == 0.0
        assert report.min_row_self == 1.0

    def test_deletion_shape_breaks_rows_only(self):
        # Two hidden states emit the same symbol (paper Table 6 shape).
        matrix = np.array(
            [[0.0, 1.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
        )
        report = analyze_orthogonality(emission(matrix))
        assert not report.rows_orthogonal
        assert report.columns_orthogonal
        assert (0, 1) in report.offending_row_pairs

    def test_creation_shape_breaks_columns_only(self):
        # One hidden state splits between two symbols (Table 7 shape).
        matrix = np.array([[0.35, 0.65, 0.0], [0.0, 0.0, 1.0]])
        report = analyze_orthogonality(emission(matrix))
        assert report.rows_orthogonal
        assert not report.columns_orthogonal
        assert (0, 1) in report.offending_column_pairs

    def test_small_leakage_tolerated(self):
        # The paper's own Table 2 leakage (0.11 / 0.17) must pass.
        matrix = np.array(
            [
                [1.0, 0.0, 0.0],
                [0.11, 0.89, 0.0],
                [0.0, 0.17, 0.83],
            ]
        )
        report = analyze_orthogonality(emission(matrix))
        assert report.rows_orthogonal

    def test_offending_pairs_use_state_ids(self):
        matrix = np.array([[0.0, 1.0], [0.0, 1.0]])
        report = analyze_orthogonality(
            emission(matrix, states=(10, 20), symbols=(10, 20))
        )
        assert report.offending_row_pairs == ((10, 20),)

    def test_empty_matrix_fully_orthogonal(self):
        report = analyze_orthogonality(
            EmissionMatrix(matrix=np.zeros((0, 0)), state_ids=(), symbol_ids=())
        )
        assert report.fully_orthogonal

    def test_single_row_matrix(self):
        report = analyze_orthogonality(emission(np.array([[1.0]])))
        assert report.fully_orthogonal

    def test_custom_tolerances(self):
        matrix = np.array([[0.7, 0.3], [0.0, 1.0]])
        loose = analyze_orthogonality(emission(matrix), row_tolerance=0.5)
        strict = analyze_orthogonality(emission(matrix), row_tolerance=0.1)
        assert loose.rows_orthogonal
        assert not strict.rows_orthogonal


class TestStuckAtSignature:
    def test_all_ones_column_detected(self):
        matrix = np.array([[0.0, 1.0], [0.0, 1.0], [0.0, 1.0]])
        matches, symbol = has_all_ones_column(
            emission(matrix, symbols=(4, 9))
        )
        assert matches
        assert symbol == 9

    def test_paper_table3_shape_passes(self):
        # Paper Table 3 after dropping ⊥: weakest row holds 0.67.
        matrix = np.array(
            [[0.0, 1.0], [0.0, 1.0], [0.0, 0.9], [0.33, 0.67], [0.01, 0.99]]
        )
        matrix = matrix / matrix.sum(axis=1, keepdims=True)
        matches, symbol = has_all_ones_column(emission(matrix, symbols=(0, 1)))
        assert matches
        assert symbol == 1

    def test_one_to_one_matrix_is_not_stuck(self):
        matches, _ = has_all_ones_column(emission(np.eye(3)))
        assert not matches

    def test_threshold_respected(self):
        matrix = np.array([[0.5, 0.5], [0.45, 0.55]])
        strict, _ = has_all_ones_column(emission(matrix), threshold=0.6)
        loose, _ = has_all_ones_column(emission(matrix), threshold=0.4)
        assert not strict
        assert loose

    def test_empty_matrix_is_not_stuck(self):
        matches, _ = has_all_ones_column(
            EmissionMatrix(matrix=np.zeros((0, 0)), state_ids=(), symbol_ids=())
        )
        assert not matches
