"""Unit tests for repro.hmm.algorithms (forward/backward inference).

The core correctness check compares the scaled implementation against a
brute-force enumeration of all hidden paths on small models.
"""

import itertools

import numpy as np
import pytest

from repro.hmm import (
    DiscreteHMM,
    expected_transitions,
    forward_backward,
    log_likelihood,
    per_symbol_log_likelihood,
    posterior_states,
)


def brute_force_likelihood(model: DiscreteHMM, obs) -> float:
    """Sum Pr{path, O} over every hidden path (exponential; tests only)."""
    total = 0.0
    n = len(obs)
    for path in itertools.product(range(model.n_states), repeat=n):
        p = model.initial[path[0]] * model.emission[path[0], obs[0]]
        for t in range(1, n):
            p *= model.transition[path[t - 1], path[t]]
            p *= model.emission[path[t], obs[t]]
        total += p
    return total


@pytest.fixture
def model(rng) -> DiscreteHMM:
    return DiscreteHMM.random(3, 4, rng)


class TestLogLikelihood:
    def test_matches_brute_force(self, model, rng):
        for _ in range(5):
            obs = rng.integers(0, 4, size=6)
            expected = np.log(brute_force_likelihood(model, list(obs)))
            assert np.isclose(log_likelihood(model, obs), expected, atol=1e-10)

    def test_single_observation(self, model):
        value = log_likelihood(model, [2])
        expected = np.log(np.sum(model.initial * model.emission[:, 2]))
        assert np.isclose(value, expected)

    def test_impossible_sequence_is_neg_inf(self):
        model = DiscreteHMM(
            transition=np.eye(2),
            emission=[[1.0, 0.0], [1.0, 0.0]],
            initial=[0.5, 0.5],
        )
        assert log_likelihood(model, [1]) == float("-inf")

    def test_longer_sequences_not_underflowing(self, model, rng):
        obs = rng.integers(0, 4, size=500)
        value = log_likelihood(model, obs)
        assert np.isfinite(value)
        assert value < 0.0

    def test_per_symbol_normalisation(self, model, rng):
        obs = rng.integers(0, 4, size=50)
        total = log_likelihood(model, obs)
        assert np.isclose(per_symbol_log_likelihood(model, obs), total / 50)


class TestForwardBackward:
    def test_gamma_rows_sum_to_one(self, model, rng):
        obs = rng.integers(0, 4, size=20)
        result = forward_backward(model, obs)
        assert np.allclose(result.gamma.sum(axis=1), 1.0)

    def test_alpha_rows_sum_to_one(self, model, rng):
        obs = rng.integers(0, 4, size=20)
        result = forward_backward(model, obs)
        assert np.allclose(result.alpha.sum(axis=1), 1.0)

    def test_loglik_matches_direct(self, model, rng):
        obs = rng.integers(0, 4, size=30)
        result = forward_backward(model, obs)
        assert np.isclose(result.log_likelihood, log_likelihood(model, obs))

    def test_gamma_matches_brute_force_posterior(self, model, rng):
        obs = list(rng.integers(0, 4, size=5))
        result = forward_backward(model, obs)
        # Brute-force posterior for t=2.
        t_check = 2
        numerators = np.zeros(model.n_states)
        for path in itertools.product(range(model.n_states), repeat=len(obs)):
            p = model.initial[path[0]] * model.emission[path[0], obs[0]]
            for t in range(1, len(obs)):
                p *= model.transition[path[t - 1], path[t]]
                p *= model.emission[path[t], obs[t]]
            numerators[path[t_check]] += p
        expected = numerators / numerators.sum()
        assert np.allclose(result.gamma[t_check], expected, atol=1e-10)

    def test_posterior_states_wrapper(self, model, rng):
        obs = rng.integers(0, 4, size=10)
        gamma = posterior_states(model, obs)
        assert gamma.shape == (10, model.n_states)


class TestExpectedTransitions:
    def test_counts_sum_to_sequence_length_minus_one(self, model, rng):
        obs = rng.integers(0, 4, size=25)
        counts = expected_transitions(model, obs)
        assert np.isclose(counts.sum(), 24.0)

    def test_counts_non_negative(self, model, rng):
        obs = rng.integers(0, 4, size=12)
        assert np.all(expected_transitions(model, obs) >= 0.0)

    def test_deterministic_chain_counts(self):
        # A deterministic cycle 0 -> 1 -> 0 with identity emission.
        model = DiscreteHMM(
            transition=[[0.0, 1.0], [1.0, 0.0]],
            emission=np.eye(2),
            initial=[1.0, 0.0],
        )
        counts = expected_transitions(model, [0, 1, 0, 1])
        assert np.isclose(counts[0, 1], 2.0)
        assert np.isclose(counts[1, 0], 1.0)
        assert np.isclose(counts[0, 0] + counts[1, 1], 0.0)
