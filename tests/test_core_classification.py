"""Unit tests for repro.core.classification (the Fig. 5 procedure).

These tests drive the classifier with hand-built OnlineHMM streams whose
structural signatures are known, independent of the full pipeline.
"""

import numpy as np
import pytest

from repro.core.classification import (
    AnomalyCategory,
    AnomalyType,
    ClassifierConfig,
    classify_system,
    classify_track,
    compare_state_attributes,
)
from repro.core.online_hmm import OnlineHMM
from repro.core.states import BOTTOM_STATE_ID
from repro.core.tracks import TrackManager

#: Four states along a synthetic diurnal ladder plus special states.
VECTORS = {
    0: np.array([12.0, 94.0]),
    1: np.array([17.0, 84.0]),
    2: np.array([24.0, 70.0]),
    3: np.array([31.0, 56.0]),
    4: np.array([15.0, 1.0]),   # a stuck value
    5: np.array([14.0, 55.0]),  # an off-manifold created state
    6: np.array([13.7, 72.4]),  # calibration image of state 1
    7: np.array([19.4, 60.3]),  # calibration image of state 2
    8: np.array([23.0, 96.0]),  # additive image of state 1 (+6, +12)
    9: np.array([30.0, 82.0]),  # additive image of state 2 (+6, +12)
}


def m_co_with_stream(pairs, n_repeats=20) -> OnlineHMM:
    """Build an M_CO from a repeated (correct, observable) stream."""
    hmm = OnlineHMM()
    for _ in range(n_repeats):
        for correct, observed in pairs:
            hmm.observe(correct, observed)
    return hmm


def clean_m_co() -> OnlineHMM:
    return m_co_with_stream([(0, 0), (1, 1), (2, 2), (3, 3)])


def track_with_stream(pairs, n_repeats=20):
    manager = TrackManager()
    track = manager.open_track(sensor_id=6, window_index=1)
    for _ in range(n_repeats):
        for correct, symbol in pairs:
            track.record(correct, symbol)
    return track


class TestSystemClassification:
    def test_clean_stream_is_none(self):
        diagnosis = classify_system(clean_m_co(), VECTORS)
        assert diagnosis.anomaly_type is AnomalyType.NONE

    def test_deletion_signature(self):
        # State 3's own symbol vanishes; it is observed as state 2.
        m_co = m_co_with_stream([(0, 0), (1, 1), (2, 2), (3, 2)])
        diagnosis = classify_system(m_co, VECTORS)
        assert diagnosis.anomaly_type is AnomalyType.DYNAMIC_DELETION
        assert (3, 2) in diagnosis.evidence["deletion_pairs"]

    def test_creation_signature(self):
        # State 0 alternates between its own symbol and spurious state 5.
        m_co = m_co_with_stream([(0, 0), (0, 5), (1, 1), (2, 2), (3, 3)])
        diagnosis = classify_system(m_co, VECTORS)
        assert diagnosis.anomaly_type is AnomalyType.DYNAMIC_CREATION
        assert (0, 5) in diagnosis.evidence["creation_pairs"]

    def test_mixed_signature(self):
        m_co = m_co_with_stream([(0, 0), (0, 5), (1, 1), (2, 2), (3, 2)])
        diagnosis = classify_system(m_co, VECTORS)
        assert diagnosis.anomaly_type is AnomalyType.MIXED

    def test_change_signature(self):
        # Every state observed wholesale as a displaced spurious image.
        vectors = dict(VECTORS)
        vectors.update(
            {
                10: np.array([4.0, 82.0]),
                11: np.array([9.0, 72.0]),
                12: np.array([16.0, 58.0]),
                13: np.array([23.0, 44.0]),
            }
        )
        m_co = m_co_with_stream([(0, 10), (1, 11), (2, 12), (3, 13)])
        diagnosis = classify_system(m_co, vectors)
        assert diagnosis.anomaly_type is AnomalyType.DYNAMIC_CHANGE
        assert diagnosis.evidence["changed_pairs"]

    def test_non_injective_shift_is_not_change(self):
        # Two states collapse onto the same spurious symbol: that is a
        # deletion-like collapse, not a one-to-one change...
        m_co = m_co_with_stream([(0, 5), (1, 5), (2, 2), (3, 3)])
        diagnosis = classify_system(m_co, VECTORS)
        assert diagnosis.anomaly_type is not AnomalyType.DYNAMIC_CHANGE

    def test_boundary_leakage_stays_none(self):
        # 10% leakage to a neighbouring *real* state (paper Table 2).
        pairs = [(0, 0)] * 9 + [(0, 1)] + [(1, 1), (2, 2), (3, 3)]
        m_co = m_co_with_stream(pairs, n_repeats=10)
        diagnosis = classify_system(m_co, VECTORS)
        assert diagnosis.anomaly_type is AnomalyType.NONE

    def test_empty_model_is_none(self):
        diagnosis = classify_system(OnlineHMM(), VECTORS)
        assert diagnosis.anomaly_type is AnomalyType.NONE

    def test_attack_confidence_positive(self):
        m_co = m_co_with_stream([(0, 0), (1, 1), (2, 2), (3, 2)])
        diagnosis = classify_system(m_co, VECTORS)
        assert diagnosis.confidence > 0.4


class TestTrackClassification:
    def test_stuck_at(self):
        track = track_with_stream([(0, 4), (1, 4), (2, 4), (3, 4)])
        diagnosis = classify_track(track, clean_m_co(), VECTORS)
        assert diagnosis.anomaly_type is AnomalyType.STUCK_AT
        assert diagnosis.category is AnomalyCategory.ERROR
        assert diagnosis.evidence["stuck_symbol"] == 4

    def test_stuck_at_with_bottom_interludes(self):
        track = track_with_stream(
            [(0, 4), (1, BOTTOM_STATE_ID), (2, 4), (3, 4)]
        )
        diagnosis = classify_track(track, clean_m_co(), VECTORS)
        assert diagnosis.anomaly_type is AnomalyType.STUCK_AT

    def test_calibration(self):
        # One-to-one map with a consistent ratio: states 1->6, 2->7 use
        # gains (0.806, 0.862); x^c / x^e = (1.24, 1.16) for both pairs.
        track = track_with_stream([(1, 6), (2, 7)])
        diagnosis = classify_track(track, clean_m_co(), VECTORS)
        assert diagnosis.anomaly_type is AnomalyType.CALIBRATION
        assert diagnosis.is_error

    def test_additive(self):
        track = track_with_stream([(1, 8), (2, 9)])
        diagnosis = classify_track(track, clean_m_co(), VECTORS)
        assert diagnosis.anomaly_type is AnomalyType.ADDITIVE

    def test_attack_verdict_propagates_to_sensor(self):
        m_co = m_co_with_stream([(0, 0), (1, 1), (2, 2), (3, 2)])
        track = track_with_stream([(3, 2)])
        diagnosis = classify_track(track, m_co, VECTORS)
        assert diagnosis.anomaly_type is AnomalyType.DYNAMIC_DELETION
        assert diagnosis.is_attack
        assert diagnosis.sensor_id == 6

    def test_short_track_gives_no_verdict(self):
        track = track_with_stream([(0, 4)], n_repeats=2)
        config = ClassifierConfig(min_track_length=5)
        diagnosis = classify_track(track, clean_m_co(), VECTORS, config)
        assert diagnosis.anomaly_type is AnomalyType.NONE
        assert diagnosis.confidence == 0.0

    def test_structureless_track_is_unknown(self):
        # The sensor wanders over many states with no consistent map.
        track = track_with_stream(
            [(0, 2), (0, 3), (1, 0), (1, 3), (2, 0), (2, 1), (3, 1), (3, 0)]
        )
        diagnosis = classify_track(track, clean_m_co(), VECTORS)
        assert diagnosis.anomaly_type is AnomalyType.UNKNOWN_ERROR


class TestCompareStateAttributes:
    def test_ratio_and_difference_statistics(self):
        comparison = compare_state_attributes([(1, 6), (2, 7)], VECTORS)
        assert comparison is not None
        assert comparison.n_pairs == 2
        assert np.allclose(comparison.ratio_mean, [1.24, 1.16], atol=0.01)
        assert np.all(comparison.ratio_std < 0.02)

    def test_ratio_omitted_near_zero(self):
        vectors = {0: np.array([10.0, 10.0]), 1: np.array([5.0, 0.0])}
        comparison = compare_state_attributes([(0, 1)], vectors)
        assert comparison.ratio_mean is None
        assert np.allclose(comparison.diff_mean, [5.0, 10.0])

    def test_missing_vectors_skipped(self):
        comparison = compare_state_attributes([(0, 99)], VECTORS)
        assert comparison is None


class TestAnomalyTaxonomy:
    def test_categories(self):
        assert AnomalyType.STUCK_AT.category is AnomalyCategory.ERROR
        assert AnomalyType.CALIBRATION.category is AnomalyCategory.ERROR
        assert AnomalyType.DYNAMIC_CREATION.category is AnomalyCategory.ATTACK
        assert AnomalyType.MIXED.category is AnomalyCategory.ATTACK
        assert AnomalyType.NONE.category is AnomalyCategory.NONE
        assert AnomalyType.UNKNOWN_ERROR.category is AnomalyCategory.UNKNOWN


class TestCoalitionGuard:
    def test_lone_tracked_sensor_not_attributed_attack(self):
        m_co = m_co_with_stream([(0, 0), (1, 1), (2, 2), (3, 2)])
        track = track_with_stream([(0, 4), (1, 4), (2, 4), (3, 4)])
        diagnosis = classify_track(
            track, m_co, VECTORS, n_tracked_sensors=1
        )
        # With no coalition, the deletion-shaped B^CO is ignored and the
        # sensor's own stuck signature wins.
        assert diagnosis.anomaly_type is AnomalyType.STUCK_AT

    def test_coalition_restores_attack_attribution(self):
        m_co = m_co_with_stream([(0, 0), (1, 1), (2, 2), (3, 2)])
        track = track_with_stream([(3, 2)])
        diagnosis = classify_track(
            track, m_co, VECTORS, n_tracked_sensors=4
        )
        assert diagnosis.anomaly_type is AnomalyType.DYNAMIC_DELETION

    def test_none_skips_the_check(self):
        m_co = m_co_with_stream([(0, 0), (1, 1), (2, 2), (3, 2)])
        track = track_with_stream([(3, 2)])
        diagnosis = classify_track(track, m_co, VECTORS, n_tracked_sensors=None)
        assert diagnosis.anomaly_type is AnomalyType.DYNAMIC_DELETION
