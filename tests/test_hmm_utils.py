"""Unit tests for repro.hmm.utils (stochastic-matrix helpers)."""

import numpy as np
import pytest

from repro.hmm.utils import (
    StochasticityError,
    as_prob_vector,
    as_stochastic_matrix,
    is_row_stochastic,
    normalize_rows,
    normalize_vector,
    random_prob_vector,
    random_stochastic_matrix,
    stationary_distribution,
    uniform_stochastic_matrix,
)


class TestAsProbVector:
    def test_accepts_valid_vector(self):
        vec = as_prob_vector([0.2, 0.3, 0.5])
        assert vec.shape == (3,)
        assert np.isclose(vec.sum(), 1.0)

    def test_rejects_negative_entries(self):
        with pytest.raises(StochasticityError):
            as_prob_vector([0.5, -0.1, 0.6])

    def test_rejects_wrong_sum(self):
        with pytest.raises(StochasticityError):
            as_prob_vector([0.2, 0.2])

    def test_rejects_matrix_input(self):
        with pytest.raises(StochasticityError):
            as_prob_vector([[0.5, 0.5]])

    def test_clips_tiny_negative_noise(self):
        vec = as_prob_vector([1.0 + 1e-12, -1e-12])
        assert np.all(vec >= 0.0)


class TestAsStochasticMatrix:
    def test_accepts_identity(self):
        mat = as_stochastic_matrix(np.eye(3))
        assert mat.shape == (3, 3)

    def test_rejects_bad_row_sum(self):
        bad = np.array([[0.5, 0.5], [0.9, 0.2]])
        with pytest.raises(StochasticityError):
            as_stochastic_matrix(bad)

    def test_rejects_negative(self):
        bad = np.array([[1.5, -0.5], [0.5, 0.5]])
        with pytest.raises(StochasticityError):
            as_stochastic_matrix(bad)

    def test_rejects_1d(self):
        with pytest.raises(StochasticityError):
            as_stochastic_matrix([0.5, 0.5])

    def test_error_names_offending_row(self):
        bad = np.array([[1.0, 0.0], [0.3, 0.3]])
        with pytest.raises(StochasticityError, match="row 1"):
            as_stochastic_matrix(bad)


class TestNormalize:
    def test_normalize_rows_unit_sums(self):
        mat = normalize_rows(np.array([[2.0, 2.0], [1.0, 3.0]]))
        assert np.allclose(mat.sum(axis=1), 1.0)

    def test_normalize_rows_zero_row_becomes_uniform(self):
        mat = normalize_rows(np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert np.allclose(mat[0], [0.5, 0.5])

    def test_normalize_rows_does_not_mutate_input(self):
        original = np.array([[2.0, 2.0]])
        normalize_rows(original)
        assert np.allclose(original, [[2.0, 2.0]])

    def test_normalize_vector(self):
        vec = normalize_vector(np.array([1.0, 3.0]))
        assert np.allclose(vec, [0.25, 0.75])

    def test_normalize_zero_vector_uniform(self):
        vec = normalize_vector(np.zeros(4))
        assert np.allclose(vec, 0.25)


class TestRandomMatrices:
    def test_random_stochastic_matrix_is_stochastic(self, rng):
        mat = random_stochastic_matrix(5, 7, rng)
        assert mat.shape == (5, 7)
        assert is_row_stochastic(mat)

    def test_random_prob_vector_sums_to_one(self, rng):
        vec = random_prob_vector(9, rng)
        assert np.isclose(vec.sum(), 1.0)

    def test_uniform_matrix(self):
        mat = uniform_stochastic_matrix(3, 4)
        assert np.allclose(mat, 0.25)

    def test_rejects_nonpositive_dims(self, rng):
        with pytest.raises(ValueError):
            random_stochastic_matrix(0, 3, rng)
        with pytest.raises(ValueError):
            random_prob_vector(0, rng)
        with pytest.raises(ValueError):
            uniform_stochastic_matrix(3, 0)


class TestIsRowStochastic:
    def test_true_for_identity(self):
        assert is_row_stochastic(np.eye(4))

    def test_false_for_negative(self):
        assert not is_row_stochastic(np.array([[1.5, -0.5]]))

    def test_false_for_vector(self):
        assert not is_row_stochastic(np.array([0.5, 0.5]))


class TestStationaryDistribution:
    def test_uniform_chain(self):
        transition = np.full((3, 3), 1.0 / 3.0)
        pi = stationary_distribution(transition)
        assert np.allclose(pi, 1.0 / 3.0)

    def test_two_state_chain(self):
        # Detailed balance: pi_0 * 0.2 = pi_1 * 0.4 -> pi = (2/3, 1/3).
        transition = np.array([[0.8, 0.2], [0.4, 0.6]])
        pi = stationary_distribution(transition)
        assert np.allclose(pi, [2.0 / 3.0, 1.0 / 3.0], atol=1e-8)

    def test_stationary_is_fixed_point(self, rng):
        transition = random_stochastic_matrix(5, 5, rng)
        pi = stationary_distribution(transition)
        assert np.allclose(pi @ transition, pi, atol=1e-8)
