"""FleetEngine vs per-tenant fused runs: bit-identical or the test fails.

One batched engine advancing N tenants must leave every tenant exactly
where its own ``process_windows_fast`` call would have — same digest,
same checkpoint snapshot, same ``WindowResult`` stream — across filter
kinds, supervisor modes, sensor counts, attribute dimensionalities,
and unequal trace lengths.  Every assertion is exact ``==``: the
batched lanes are certified shortcuts, never approximations.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import DetectionPipeline, PipelineConfig
from repro.experiments import run_fleet
from repro.fleet import FleetEngine
from repro.sensornet.collector import windows_from_arrays

FILTER_KINDS = ("k_of_n", "sprt", "cusum")
SUPERVISOR_MODES = ("off", "warn", "repair")


def snapshot_json(pipeline: DetectionPipeline) -> str:
    return json.dumps(pipeline.snapshot(), sort_keys=True, default=str)


def regime_windows(
    seed: int,
    n_windows: int = 80,
    n_sensors: int = 6,
    dims: int = 2,
    dwell: int = 20,
    noise: float = 0.3,
):
    """Two-regime telemetry: the fleet engine's target workload."""
    if n_windows == 0:
        return []
    rng = np.random.default_rng(seed)
    base = 10.0 + 5.0 * np.arange(dims)
    ts, sids, vals = [], [], []
    for index in range(1, n_windows + 1):
        hot = ((index - 1) // dwell) % 2
        truth = base + (12.0 if hot else 0.0)
        for sensor in range(n_sensors):
            ts.append((index - 1) * 60.0 + 1.0)
            sids.append(sensor)
            vals.append(truth + rng.normal(0, noise, dims))
    ts_arr = np.asarray(ts, dtype=float)
    sid_arr = np.asarray(sids)
    val_arr = np.asarray(vals, dtype=float)
    order = np.lexsort((sid_arr, ts_arr))
    return windows_from_arrays(
        ts_arr[order],
        sid_arr[order],
        val_arr[order],
        PipelineConfig().window_minutes,
    )


def assert_fleet_matches_solo(tenants) -> None:
    """Run ``(config, windows)`` tenants batched and solo; demand equality."""
    solo = []
    for config, windows in tenants:
        pipeline = DetectionPipeline(config)
        pipeline.process_windows_fast(windows)
        solo.append(pipeline)
    fleet_pipes = [DetectionPipeline(config) for config, _ in tenants]
    engine = FleetEngine.from_pipelines(fleet_pipes)
    consumed = engine.process_windows([windows for _, windows in tenants])
    assert consumed == sum(len(windows) for _, windows in tenants)
    for reference, batched in zip(solo, engine.to_pipelines()):
        assert reference.digest() == batched.digest()
        assert snapshot_json(reference) == snapshot_json(batched)
        assert len(reference.results) == len(batched.results)
        for ours, theirs in zip(reference.results, batched.results):
            assert ours == theirs


@pytest.mark.parametrize("kind", FILTER_KINDS)
def test_parity_per_filter_kind(kind):
    tenants = [
        (
            PipelineConfig(filter_kind=kind),
            regime_windows(seed=10 + tid, n_sensors=5 + tid),
        )
        for tid in range(4)
    ]
    assert_fleet_matches_solo(tenants)


@pytest.mark.parametrize("mode", SUPERVISOR_MODES)
def test_parity_per_supervisor_mode(mode):
    # Supervised tenants take the solo lane inside the engine; mixing
    # them with unsupervised ones exercises lane routing.
    tenants = [
        (
            PipelineConfig(supervisor_mode=mode),
            regime_windows(seed=20 + tid),
        )
        for tid in range(3)
    ]
    tenants.append((PipelineConfig(), regime_windows(seed=29)))
    assert_fleet_matches_solo(tenants)


def test_parity_heterogeneous_fleet():
    # Every filter kind crossed with every supervisor mode, mixed
    # sensor counts — one engine, nine different tenants.
    tenants = []
    for tid, (kind, mode) in enumerate(
        (kind, mode) for kind in FILTER_KINDS for mode in SUPERVISOR_MODES
    ):
        config = PipelineConfig(filter_kind=kind, supervisor_mode=mode)
        tenants.append(
            (config, regime_windows(seed=40 + tid, n_sensors=4 + tid % 5))
        )
    assert_fleet_matches_solo(tenants)


def test_parity_mixed_dimensionalities():
    tenants = [
        (PipelineConfig(), regime_windows(seed=60 + dims, dims=dims))
        for dims in (1, 2, 3)
    ]
    assert_fleet_matches_solo(tenants)


def test_parity_unequal_trace_lengths():
    tenants = [
        (PipelineConfig(), regime_windows(seed=70 + tid, n_windows=length))
        for tid, length in enumerate((15, 47, 80, 0))
    ]
    assert_fleet_matches_solo(tenants)


def test_empty_fleet():
    engine = FleetEngine.from_pipelines([])
    assert engine.process_windows([]) == 0
    assert engine.to_pipelines() == []


def test_window_list_count_mismatch_raises():
    engine = FleetEngine.from_pipelines([DetectionPipeline(PipelineConfig())])
    with pytest.raises(ValueError):
        engine.process_windows([])


def test_run_fleet_helper_matches_solo():
    configs = [PipelineConfig(), PipelineConfig(filter_kind="sprt"), None]
    loads = [regime_windows(seed=80 + tid, n_sensors=5) for tid in range(3)]
    fleet = run_fleet(loads, configs)
    for tid, pipeline in enumerate(fleet):
        reference = DetectionPipeline(configs[tid] or PipelineConfig())
        reference.process_windows_fast(loads[tid])
        assert reference.digest() == pipeline.digest()
        assert snapshot_json(reference) == snapshot_json(pipeline)


def test_run_fleet_config_count_mismatch_raises():
    with pytest.raises(ValueError):
        run_fleet([regime_windows(seed=1)], [None, None])
