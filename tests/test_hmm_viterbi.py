"""Unit tests for repro.hmm.viterbi."""

import itertools

import numpy as np
import pytest

from repro.hmm import DiscreteHMM, decode, viterbi


def brute_force_best_path(model: DiscreteHMM, obs):
    """Enumerate all paths; return (best path, best log prob)."""
    best_path, best_logp = None, -np.inf
    for path in itertools.product(range(model.n_states), repeat=len(obs)):
        p = model.initial[path[0]] * model.emission[path[0], obs[0]]
        for t in range(1, len(obs)):
            p *= model.transition[path[t - 1], path[t]]
            p *= model.emission[path[t], obs[t]]
        if p > 0 and np.log(p) > best_logp:
            best_logp = np.log(p)
            best_path = path
    return best_path, best_logp


class TestViterbi:
    def test_matches_brute_force_logprob(self, rng):
        model = DiscreteHMM.random(3, 3, rng)
        for _ in range(5):
            obs = list(rng.integers(0, 3, size=6))
            result = viterbi(model, obs)
            _, expected_logp = brute_force_best_path(model, obs)
            assert np.isclose(result.log_probability, expected_logp, atol=1e-10)

    def test_returned_path_achieves_best_score(self, rng):
        # Ties may pick a different path than enumeration; the returned
        # path must still score exactly the best achievable log prob.
        model = DiscreteHMM.random(2, 2, rng)
        obs = list(rng.integers(0, 2, size=8))
        result = viterbi(model, obs)
        path = result.path
        p = model.initial[path[0]] * model.emission[path[0], obs[0]]
        for t in range(1, len(obs)):
            p *= model.transition[path[t - 1], path[t]]
            p *= model.emission[path[t], obs[t]]
        _, best_logp = brute_force_best_path(model, obs)
        assert np.isclose(np.log(p), best_logp, atol=1e-10)

    def test_identity_emission_decodes_observations(self):
        model = DiscreteHMM(
            transition=np.full((3, 3), 1.0 / 3.0),
            emission=np.eye(3),
            initial=np.full(3, 1.0 / 3.0),
        )
        obs = [2, 0, 1, 1, 2]
        assert list(decode(model, obs)) == obs

    def test_impossible_sequence_has_neg_inf_score(self):
        model = DiscreteHMM(
            transition=np.eye(2),
            emission=[[1.0, 0.0], [1.0, 0.0]],
            initial=[1.0, 0.0],
        )
        result = viterbi(model, [1, 1])
        assert result.log_probability == -np.inf

    def test_path_length_matches_observations(self, rng):
        model = DiscreteHMM.random(4, 5, rng)
        obs = rng.integers(0, 5, size=17)
        assert viterbi(model, obs).path.shape == (17,)

    def test_rejects_empty_sequence(self, rng):
        model = DiscreteHMM.random(2, 2, rng)
        with pytest.raises(ValueError):
            viterbi(model, [])

    def test_sticky_chain_prefers_staying(self):
        # Sticky transitions + slightly ambiguous emissions: the best
        # explanation of a one-off deviant symbol keeps the state.
        model = DiscreteHMM(
            transition=[[0.95, 0.05], [0.05, 0.95]],
            emission=[[0.7, 0.3], [0.3, 0.7]],
            initial=[0.5, 0.5],
        )
        path = decode(model, [0, 0, 1, 0, 0])
        assert list(path) == [0, 0, 0, 0, 0]
