"""ResilientFleetEngine: containment, attribution, recovery, parity.

The fault-isolation layer must be invisible when nothing faults (every
tenant bit-identical to its solo ``process_windows_fast`` run) and
surgical when something does: the offending tenant quarantined with its
failure recorded, every other tenant still bit-identical to a clean
run.  Every parity assertion is exact ``==``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import DetectionPipeline, PipelineConfig
from repro.fleet import (
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    FleetEngine,
    FleetIsolationError,
    ResilientFleetEngine,
)
from repro.resilience.checkpoint import snapshot
from repro.resilience.fleet_chaos import FaultingWindow, InjectedKernelFault
from repro.resilience.invariants import Invariant
from repro.sensornet.collector import windows_from_arrays


def snapshot_json(pipeline: DetectionPipeline) -> str:
    return json.dumps(pipeline.snapshot(), sort_keys=True, default=str)


def regime_windows(
    seed: int,
    n_windows: int = 120,
    n_sensors: int = 6,
    dims: int = 2,
    dwell: int = 20,
    noise: float = 0.3,
):
    """Two-regime telemetry: the fleet engine's target workload."""
    rng = np.random.default_rng(seed)
    base = 10.0 + 5.0 * np.arange(dims)
    ts, sids, vals = [], [], []
    for index in range(1, n_windows + 1):
        hot = ((index - 1) // dwell) % 2
        truth = base + (12.0 if hot else 0.0)
        for sensor in range(n_sensors):
            ts.append((index - 1) * 60.0 + 1.0)
            sids.append(sensor)
            vals.append(truth + rng.normal(0, noise, dims))
    ts_arr = np.asarray(ts, dtype=float)
    sid_arr = np.asarray(sids)
    val_arr = np.asarray(vals, dtype=float)
    order = np.lexsort((sid_arr, ts_arr))
    return windows_from_arrays(
        ts_arr[order],
        sid_arr[order],
        val_arr[order],
        PipelineConfig().window_minutes,
    )


def solo_reference(windows, config=None):
    pipeline = DetectionPipeline(config or PipelineConfig(n_sensors=6))
    pipeline.process_windows_fast(windows)
    return pipeline


def poison_with_faults(windows, start: int, count: int):
    """Replace ``count`` windows from ``start`` with raising proxies."""
    poisoned = list(windows)
    for j in range(start, start + count):
        w = poisoned[j]
        poisoned[j] = FaultingWindow(w.index, w.start_minutes, w.end_minutes)
    return poisoned


# -- no-fault invisibility ---------------------------------------------------


def test_no_fault_run_is_bit_identical_to_solo():
    traces = [regime_windows(seed) for seed in range(4)]
    solos = [solo_reference(t) for t in traces]

    engine = ResilientFleetEngine(
        [DetectionPipeline(PipelineConfig(n_sensors=6)) for _ in traces],
        checkpoint_interval=40,
        probation=10,
    )
    consumed = engine.process_windows(traces)

    assert consumed == sum(len(t) for t in traces)
    for reference, tenant in zip(solos, engine.to_pipelines()):
        assert reference.digest() == tenant.digest()
        assert snapshot_json(reference) == snapshot_json(tenant)
    health = engine.health_report()
    assert health["statuses"] == [HEALTHY] * 4
    assert health["counters"]["quarantines"] == 0
    assert health["counters"]["epochs"] == 3  # 120 windows / interval 40


def test_state_dict_carries_fleet_health_telemetry():
    traces = [regime_windows(seed, n_windows=40) for seed in range(2)]
    engine = ResilientFleetEngine(
        [DetectionPipeline(PipelineConfig(n_sensors=6)) for _ in traces],
        checkpoint_interval=20,
    )
    engine.process_windows(traces)
    payload = engine.state_dict()
    health = payload["fleet_health"]
    assert health["statuses"] == [HEALTHY, HEALTHY]
    assert {"checkpoint_seconds", "rollback_seconds"} <= set(
        health["overhead_seconds"]
    )
    json.dumps(payload)  # telemetry must stay JSON-ready
    # The bare engine's payload has no health block.
    bare = FleetEngine(
        [DetectionPipeline(PipelineConfig(n_sensors=6))]
    ).state_dict()
    assert "fleet_health" not in bare


# -- containment, attribution, bounded recovery ------------------------------


def test_injected_fault_quarantines_culprit_and_spares_survivors():
    traces = [regime_windows(seed) for seed in range(4)]
    solos = [solo_reference(t) for t in traces]
    burst_start, burst = 50, 5
    poisoned = poison_with_faults(traces[2], burst_start, burst)
    fleet_traces = [traces[0], traces[1], poisoned, traces[3]]

    engine = ResilientFleetEngine(
        [DetectionPipeline(PipelineConfig(n_sensors=6)) for _ in traces],
        checkpoint_interval=40,
        probation=10,
        max_recoveries=2,
    )
    consumed = engine.process_windows(fleet_traces)
    assert consumed == sum(len(t) for t in traces)  # skips count as consumed

    # Survivors: bit-identical to clean solo runs.
    tenants = engine.to_pipelines()
    for tid in (0, 1, 3):
        assert solos[tid].digest() == tenants[tid].digest()
        assert snapshot_json(solos[tid]) == snapshot_json(tenants[tid])

    # Culprit: quarantined once, faults recorded with kind and window
    # index, burst skipped during recovery, re-admitted after probation.
    record = engine.records[2]
    assert record.status == HEALTHY
    assert record.quarantines == 1
    assert record.readmissions == 1
    assert record.skipped_windows == burst
    assert record.recovery_attempts == 1
    kinds = {failure.kind for failure in record.failures}
    assert kinds == {"InjectedKernelFault"}
    fault_indices = {failure.window_index for failure in record.failures}
    poisoned_indices = {
        poisoned[j].index for j in range(burst_start, burst_start + burst)
    }
    assert fault_indices == poisoned_indices

    # The culprit's final state equals a solo run over the clean windows
    # (the faulting ones were skipped, everything else replayed exactly).
    clean = [
        w
        for j, w in enumerate(traces[2])
        if not burst_start <= j < burst_start + burst
    ]
    reference = solo_reference(clean)
    assert reference.digest() == tenants[2].digest()
    assert snapshot_json(reference) == snapshot_json(tenants[2])


def test_max_recoveries_exhaustion_parks_tenant_at_last_good_state():
    traces = [regime_windows(seed) for seed in range(3)]
    solos = [solo_reference(t) for t in traces]
    poisoned = poison_with_faults(traces[1], 50, 3)
    fleet_traces = [traces[0], poisoned, traces[2]]

    engine = ResilientFleetEngine(
        [DetectionPipeline(PipelineConfig(n_sensors=6)) for _ in traces],
        checkpoint_interval=40,
        probation=10,
        max_recoveries=0,  # first quarantine parks permanently
    )
    consumed = engine.process_windows(fleet_traces)
    # Parked tenant consumed only its first clean epoch; survivors all.
    assert consumed == 2 * 120 + 40

    record = engine.records[1]
    assert record.status == QUARANTINED
    assert record.quarantines == 1
    assert record.readmissions == 0
    assert record.skipped_windows == 0
    assert record.position == 40

    tenants = engine.to_pipelines()
    # Parked state is the epoch-boundary checkpoint: solo over 40 windows.
    reference = solo_reference(traces[1][:40])
    assert reference.digest() == tenants[1].digest()
    assert snapshot_json(reference) == snapshot_json(tenants[1])
    for tid in (0, 2):
        assert solos[tid].digest() == tenants[tid].digest()


def test_unattributable_fault_raises_fleet_isolation_error():
    class FlakyWindow(FaultingWindow):
        """Faults on first data access only — probes see a clean window."""

        __slots__ = ("_fired", "_window")

        def __init__(self, window):
            super().__init__(
                window.index, window.start_minutes, window.end_minutes
            )
            self._fired = False
            self._window = window

        def _maybe_fire(self):
            if not self._fired:
                self._fired = True
                raise InjectedKernelFault("one-shot fault")

        @property
        def observations(self):
            self._maybe_fire()
            return self._window.observations

        @property
        def messages(self):
            self._maybe_fire()
            return self._window.messages

        @property
        def sensor_ids(self):
            self._maybe_fire()
            return self._window.sensor_ids

        @property
        def sensor_id_array(self):
            self._maybe_fire()
            return self._window.sensor_id_array

        @property
        def is_empty(self):
            self._maybe_fire()
            return self._window.is_empty

        def per_sensor_mean(self):
            self._maybe_fire()
            return self._window.per_sensor_mean()

        def overall_mean(self):
            self._maybe_fire()
            return self._window.overall_mean()

    traces = [regime_windows(seed, n_windows=40) for seed in range(2)]
    flaky = list(traces[1])
    flaky[10] = FlakyWindow(flaky[10])

    engine = ResilientFleetEngine(
        [DetectionPipeline(PipelineConfig(n_sensors=6)) for _ in traces],
        checkpoint_interval=40,
    )
    # No tenant reproduces the failure solo: quarantining an arbitrary
    # one would hide an engine bug, so the failure surfaces loudly.
    with pytest.raises(FleetIsolationError):
        engine.process_windows([traces[0], flaky])


# -- degraded mode via the per-tenant supervisor -----------------------------


def taint_invariant():
    def check(pipeline):
        return ["synthetic taint"] if getattr(pipeline, "_taint", False) else []

    def repair(pipeline):
        pipeline._taint = False
        return ["cleared synthetic taint"]

    return Invariant(
        name="synthetic-taint",
        description="test-only repairable invariant",
        check=check,
        repair=repair,
    )


def test_repaired_violation_degrades_tenant_not_fleet():
    config = PipelineConfig(n_sensors=6, supervisor_mode="repair")
    traces = [regime_windows(seed) for seed in range(3)]

    def build(tainted: bool) -> DetectionPipeline:
        pipeline = DetectionPipeline(config)
        pipeline.supervisor.invariants = (
            *pipeline.supervisor.invariants,
            taint_invariant(),
        )
        if tainted:
            pipeline._taint = True
        return pipeline

    solos = []
    for tid, trace in enumerate(traces):
        reference = build(tainted=tid == 1)
        reference.process_windows_fast(trace)
        solos.append(reference)

    pipelines = [build(tainted=tid == 1) for tid in range(3)]
    engine = ResilientFleetEngine(
        pipelines, checkpoint_interval=40, probation=10
    )
    consumed = engine.process_windows(traces)
    assert consumed == sum(len(t) for t in traces)

    record = engine.records[1]
    assert record.degradations == 1
    assert record.quarantines == 0
    assert record.status == HEALTHY  # re-admitted after a clean probation
    assert record.readmissions == 1
    assert record.failures[0].kind == "invariant:synthetic-taint"

    # Degradation routes the tenant to its exact solo path: results stay
    # bit-identical to a plain supervised run, for it and the fleet.
    for reference, tenant in zip(solos, engine.to_pipelines()):
        assert reference.digest() == tenant.digest()
        assert snapshot_json(reference) == snapshot_json(tenant)
    assert engine.health_report()["counters"]["quarantines"] == 0


# -- checkpoint hygiene ------------------------------------------------------


def test_snapshot_shares_no_state_with_live_or_restored_pipeline():
    # The isolation layer stores snapshot dicts without serialising
    # them; that is only sound if the dict never mutates under the live
    # pipeline (or a pipeline restored from it) advancing.
    from repro.resilience.checkpoint import restore

    windows = regime_windows(9, n_windows=80)
    pipeline = DetectionPipeline(PipelineConfig(n_sensors=6))
    pipeline.process_windows_fast(windows[:40])

    stored = snapshot(pipeline)
    frozen = json.dumps(stored, sort_keys=True)

    pipeline.process_windows_fast(windows[40:])
    assert json.dumps(stored, sort_keys=True) == frozen

    restored = restore(stored)
    restored.process_windows_fast(windows[40:])
    assert json.dumps(stored, sort_keys=True) == frozen
    assert restored.digest() == pipeline.digest()


# -- mid-stretch eviction (stepwise run API) ---------------------------------


def test_evict_mid_steady_stretch_seals_deferred_state():
    # Single-regime traces: after bootstrap both tenants sit in one long
    # certified steady stretch with deferred quiet-window bookkeeping.
    traces = [
        regime_windows(seed, n_windows=80, dwell=80) for seed in range(2)
    ]
    split = 30

    pipelines = [DetectionPipeline(PipelineConfig(n_sensors=6)) for _ in traces]
    engine = FleetEngine(pipelines)
    n_steps = engine.begin_run(traces)
    assert n_steps == 80
    for _ in range(split):
        assert engine.step_once()
    evicted = engine.evict(1)
    while engine.step_once():
        pass
    engine.end_run()

    # The evicted tenant must equal a solo run over the same prefix —
    # its deferred steady-stretch commits sealed at handoff.
    prefix_reference = solo_reference(traces[1][:split])
    assert prefix_reference.digest() == evicted.digest()
    assert snapshot_json(prefix_reference) == snapshot_json(evicted)
    # And continue cleanly from the sealed state.
    evicted.process_windows_fast(traces[1][split:])
    full_reference = solo_reference(traces[1])
    assert full_reference.digest() == evicted.digest()
    assert snapshot_json(full_reference) == snapshot_json(evicted)

    # The surviving tenant is untouched by the eviction.
    survivor_reference = solo_reference(traces[0])
    (survivor,) = engine.to_pipelines()
    assert survivor_reference.digest() == survivor.digest()
    assert snapshot_json(survivor_reference) == snapshot_json(survivor)


def test_constructor_rejects_bad_isolation_knobs():
    pipelines = [DetectionPipeline(PipelineConfig(n_sensors=6))]
    with pytest.raises(ValueError):
        ResilientFleetEngine(pipelines, checkpoint_interval=0)
    with pytest.raises(ValueError):
        ResilientFleetEngine(pipelines, probation=0)
    with pytest.raises(ValueError):
        ResilientFleetEngine(pipelines, max_recoveries=-1)


# -- adversarial harnesses and CLI surface -----------------------------------


def test_fleet_chaos_harness_quarantines_and_reports_ok():
    from repro.resilience import run_fleet_chaos

    report = run_fleet_chaos(
        n_tenants=4,
        n_poisoned=1,
        kinds=("exception",),
        seed=1,
        n_windows=80,
        burst=3,
        checkpoint_interval=20,
        probation=6,
    )
    assert report.ok
    assert report.survivors_ok
    assert len(report.victims) == 1
    (victim_tid,) = report.victims
    victim = next(o for o in report.outcomes if o.tid == victim_tid)
    assert victim.handled
    assert victim.quarantines >= 1
    assert "InjectedKernelFault" in victim.failure_kinds
    text = report.render()
    assert "verdict: OK" in text
    assert "survivors: bit-identical" in text


def test_fleet_chaos_is_seed_deterministic():
    from repro.resilience import run_fleet_chaos

    kwargs = dict(
        n_tenants=4,
        n_poisoned=1,
        kinds=("exception",),
        seed=7,
        n_windows=60,
        burst=2,
        checkpoint_interval=20,
        probation=6,
    )
    first = run_fleet_chaos(**kwargs)
    second = run_fleet_chaos(**kwargs)
    assert first.victims == second.victims
    assert [o.digest for o in first.outcomes] == [
        o.digest for o in second.outcomes
    ]


def test_fleet_fuzz_harness_smoke():
    from repro.resilience import run_fleet_fuzz

    report = run_fleet_fuzz(
        n_seeds=1, windows_per_seed=40, n_tenants=4, n_poisoned=1
    )
    assert report.ok
    assert "verdict: OK" in report.render()


def test_run_fleet_resilient_matches_plain_fleet():
    from repro.experiments.runner import run_fleet

    traces = [regime_windows(seed, n_windows=40) for seed in range(3)]
    configs = [PipelineConfig(n_sensors=6)] * 3
    plain = run_fleet(traces, configs)
    resilient = run_fleet(
        traces,
        configs,
        resilient=True,
        checkpoint_interval=20,
        probation=8,
    )
    for ours, theirs in zip(plain, resilient):
        assert ours.digest() == theirs.digest()
        assert snapshot_json(ours) == snapshot_json(theirs)


def test_cli_parses_fleet_chaos_flags():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        [
            "chaos",
            "--fleet",
            "--tenants",
            "8",
            "--poisoned",
            "2",
            "--kinds",
            "exploding,malformed,exception",
            "--fleet-seed",
            "3",
            "--fleet-windows",
            "240",
            "--checkpoint-interval",
            "64",
            "--probation",
            "12",
        ]
    )
    assert args.fleet is True
    assert args.tenants == 8
    assert args.poisoned == 2
    assert args.kinds == "exploding,malformed,exception"
    assert args.fleet_seed == 3
    assert args.fleet_windows == 240
    assert args.checkpoint_interval == 64
    assert args.probation == 12
    assert args.solo_reference is False

    args = build_parser().parse_args(["chaos", "--fleet", "--solo-reference"])
    assert args.solo_reference is True


def test_cli_parses_fleet_soak_and_fleet_fuzz_flags():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["fleet-soak", "--seeds", "5", "--tenants", "6", "--poisoned", "2"]
    )
    assert args.command == "fleet-soak"
    assert args.seeds == 5
    assert args.tenants == 6
    assert args.poisoned == 2
    assert args.burst == 5  # shared poison-plan defaults ride along

    args = build_parser().parse_args(
        ["fuzz", "--fleet", "--seeds", "5", "--tenants", "6", "--poisoned", "2"]
    )
    assert args.command == "fuzz"
    assert args.fleet is True
    assert args.seeds == 5
    assert args.tenants == 6
    assert args.poisoned == 2


def test_cli_fleet_chaos_smoke(capsys):
    from repro.cli import main

    code = main(
        [
            "chaos",
            "--fleet",
            "--tenants",
            "4",
            "--poisoned",
            "1",
            "--kinds",
            "exception",
            "--fleet-seed",
            "1",
            "--fleet-windows",
            "60",
            "--burst",
            "2",
            "--checkpoint-interval",
            "20",
            "--probation",
            "6",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "verdict: OK" in out
    assert "survivors: bit-identical" in out
