"""Parallel experiment runner: determinism and plumbing.

The fan-out contract (DESIGN.md §Performance): ``run_scenarios_parallel``
returns identical :class:`ScenarioOutcome` lists for any ``n_jobs``,
because every worker rebuilds its scenario from the spec's own seed and
results are collected in submission order.
"""

from __future__ import annotations

import pytest

from repro.config import PipelineConfig
from repro.experiments import (
    ScenarioOutcome,
    ScenarioSpec,
    run_scenario,
    run_scenarios_parallel,
    summarize_run,
)
from repro.experiments.runner import _run_scenario_spec, resolve_n_jobs
from repro.faults.campaign import run_campaigns_parallel

# Small/fast specs: 3 simulated days keep each worker under a few seconds.
SPECS = [
    ScenarioSpec("clean", n_days=3, seed=17),
    ScenarioSpec("stuck_at", n_days=3, seed=17),
    ScenarioSpec("calibration", n_days=3, seed=23),
]


@pytest.fixture(scope="module")
def serial_outcomes():
    return run_scenarios_parallel(SPECS, n_jobs=1)


def test_serial_matches_parallel(serial_outcomes):
    parallel = run_scenarios_parallel(SPECS, n_jobs=2)
    assert parallel == serial_outcomes


def test_results_in_submission_order(serial_outcomes):
    assert [o.name for o in serial_outcomes] == [
        "clean",
        "stuck-at",
        "calibration",
    ]
    assert [o.seed for o in serial_outcomes] == [17, 17, 23]


def test_outcome_matches_direct_run(serial_outcomes):
    spec = SPECS[1]
    direct = _run_scenario_spec(spec)
    assert direct == serial_outcomes[1]
    assert isinstance(direct, ScenarioOutcome)
    assert direct.n_windows > 0
    assert direct.n_model_states > 0
    assert direct.correct_model_labels


def test_summarize_run_carries_ground_truth():
    from repro.experiments.scenarios import stuck_at_scenario

    run = stuck_at_scenario(n_days=3, seed=17)
    outcome = summarize_run(run)
    assert outcome.ground_truth == run.ground_truth
    assert outcome.n_days == run.trace_config.n_days
    assert outcome.detected_sensors() == sorted(outcome.sensor_diagnoses)


def test_unknown_scenario_raises():
    with pytest.raises(KeyError, match="unknown scenario"):
        _run_scenario_spec(ScenarioSpec("no-such-scenario", n_days=1))


def test_resolve_n_jobs():
    assert resolve_n_jobs(1) == 1
    assert resolve_n_jobs(4) == 4
    assert resolve_n_jobs(-3) == 1
    assert resolve_n_jobs(None) >= 1
    assert resolve_n_jobs(0) == resolve_n_jobs(None)


def _poison_pool(monkeypatch):
    """Make any ProcessPoolExecutor construction fail loudly."""
    from repro.experiments import runner

    def boom(*args, **kwargs):  # pragma: no cover - failure is the assert
        raise AssertionError("ProcessPoolExecutor must not be constructed")

    monkeypatch.setattr(runner, "ProcessPoolExecutor", boom)


def test_n_jobs_1_runs_inline_without_pool(monkeypatch, serial_outcomes):
    # Serial runs must stay in-process: no fork/spawn overhead, no
    # worker initialisation, and debuggable stack traces.
    _poison_pool(monkeypatch)
    assert run_scenarios_parallel(SPECS, n_jobs=1) == serial_outcomes


def test_single_spec_runs_inline_without_pool(monkeypatch, serial_outcomes):
    # One scenario can never benefit from a pool, whatever n_jobs says.
    _poison_pool(monkeypatch)
    outcomes = run_scenarios_parallel(SPECS[:1], n_jobs=4)
    assert outcomes == serial_outcomes[:1]


def test_campaign_wrapper_delegates(serial_outcomes):
    outcomes = run_campaigns_parallel(
        ["clean", "stuck_at"], n_days=3, seed=17, n_jobs=1
    )
    assert outcomes == serial_outcomes[:2]


def test_config_n_jobs_validation():
    assert PipelineConfig(n_jobs=0).n_jobs == 0
    assert PipelineConfig(n_jobs=4).n_jobs == 4
    with pytest.raises(ValueError, match="n_jobs"):
        PipelineConfig(n_jobs=-1)


def test_spec_defaults_match_cached_scenario_defaults():
    spec = ScenarioSpec("clean")
    assert spec.n_days == 21
    assert spec.seed == 2003
