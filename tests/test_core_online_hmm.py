"""Unit tests for repro.core.online_hmm (the §3.2 estimator)."""

import numpy as np
import pytest

from repro.core.online_hmm import EmissionMatrix, OnlineHMM
from repro.core.states import BOTTOM_STATE_ID


class TestUpdateRules:
    def test_identity_initialisation(self):
        hmm = OnlineHMM()
        hmm.observe(0, 0)
        emission = hmm.emission_matrix()
        assert emission.state_ids == (0,)
        assert np.allclose(emission.matrix, [[1.0]])

    def test_transition_updated_only_on_state_change(self):
        hmm = OnlineHMM(transition_innovation=0.5)
        hmm.observe(0, 0)
        hmm.observe(0, 0)  # same state: A row untouched
        transition, ids = hmm.transition_matrix()
        assert np.allclose(transition, [[1.0]])
        hmm.observe(1, 1)  # 0 -> 1: row 0 moves toward 1
        transition, ids = hmm.transition_matrix()
        row0 = transition[ids.index(0)]
        assert row0[ids.index(0)] == pytest.approx(0.5)
        assert row0[ids.index(1)] == pytest.approx(0.5)

    def test_paper_update_formula_on_emission(self):
        hmm = OnlineHMM(emission_innovation=0.1)
        hmm.observe(0, 0)  # row 0: delta at symbol 0 (stays 1.0)
        hmm.observe(0, 1)  # row 0: 0.9 * (1, 0) + 0.1 * (0, 1)
        emission = hmm.emission_matrix()
        row = emission.row_of(0)
        sym = {s: k for k, s in enumerate(emission.symbol_ids)}
        assert row[sym[0]] == pytest.approx(0.9)
        assert row[sym[1]] == pytest.approx(0.1)

    def test_rows_remain_stochastic_under_updates(self, rng):
        hmm = OnlineHMM(transition_innovation=0.3, emission_innovation=0.3)
        for _ in range(500):
            hmm.observe(int(rng.integers(0, 5)), int(rng.integers(0, 7)))
        assert hmm.is_row_stochastic()

    def test_repeated_symbol_converges_to_delta(self):
        hmm = OnlineHMM(emission_innovation=0.1)
        hmm.observe(0, 0)
        for _ in range(200):
            hmm.observe(0, 3)
        row = hmm.emission_matrix().row_of(0)
        sym = hmm.emission_matrix().symbol_ids
        assert row[sym.index(3)] > 0.99

    def test_alternating_symbols_split_row(self):
        hmm = OnlineHMM(emission_innovation=0.1)
        for _ in range(200):
            hmm.observe(0, 0)
            hmm.observe(0, 1)
        row = hmm.emission_matrix().row_of(0)
        # Long-run the row splits roughly 0.47/0.53 (EMA of alternation).
        assert 0.3 < row[0] < 0.7
        assert 0.3 < row[1] < 0.7

    def test_rejects_bad_innovation(self):
        with pytest.raises(ValueError):
            OnlineHMM(transition_innovation=0.0)
        with pytest.raises(ValueError):
            OnlineHMM(emission_innovation=1.0)


class TestOpenAlphabet:
    def test_states_and_symbols_grow_on_demand(self):
        hmm = OnlineHMM()
        hmm.observe(3, 7)
        hmm.observe(5, BOTTOM_STATE_ID)
        assert set(hmm.state_ids) == {3, 5}
        assert set(hmm.symbol_ids) == {3, 5, 7, BOTTOM_STATE_ID}

    def test_new_state_row_is_delta_on_own_symbol(self):
        hmm = OnlineHMM()
        hmm.observe(0, 0)
        hmm.observe(1, 1)
        # State 2 exists implicitly once observed.
        hmm.observe(2, 0)
        emission = hmm.emission_matrix()
        row = emission.row_of(2)
        sym = {s: k for k, s in enumerate(emission.symbol_ids)}
        # One update with innovation 0.1 from delta(2): 0.9 at 2, 0.1 at 0.
        assert row[sym[2]] == pytest.approx(0.9)
        assert row[sym[0]] == pytest.approx(0.1)

    def test_visit_counts(self):
        hmm = OnlineHMM()
        hmm.observe(0, 0)
        hmm.observe(0, 1)
        hmm.observe(1, 1)
        assert hmm.state_visits(0) == 2
        assert hmm.state_visits(1) == 1
        assert hmm.state_visits(42) == 0
        assert hmm.n_updates == 3


class TestSnapshots:
    def test_min_visits_filters_states(self):
        hmm = OnlineHMM()
        for _ in range(10):
            hmm.observe(0, 0)
        hmm.observe(1, 1)
        emission = hmm.emission_matrix(min_state_visits=5)
        assert emission.state_ids == (0,)

    def test_filtered_snapshot_rows_renormalised(self):
        hmm = OnlineHMM(emission_innovation=0.5)
        hmm.observe(0, 0)
        hmm.observe(0, 1)
        # Drop symbol 1 via min_symbol_visits; row must renormalise.
        emission = hmm.emission_matrix(min_symbol_visits=2)
        assert np.allclose(emission.matrix.sum(axis=1), 1.0)

    def test_empty_snapshot(self):
        emission = OnlineHMM().emission_matrix()
        assert emission.matrix.size == 0

    def test_without_bottom_removes_and_renormalises(self):
        hmm = OnlineHMM(emission_innovation=0.5)
        hmm.observe(0, 0)
        hmm.observe(0, BOTTOM_STATE_ID)
        emission = hmm.emission_without_bottom()
        assert BOTTOM_STATE_ID not in emission.symbol_ids
        assert np.allclose(emission.matrix.sum(axis=1), 1.0)

    def test_dominant_symbols(self):
        hmm = OnlineHMM(emission_innovation=0.5)
        hmm.observe(0, 0)
        hmm.observe(1, 0)
        hmm.observe(1, 0)
        dominant = hmm.emission_matrix().dominant_symbols()
        assert dominant[1] == 0


class TestDenoise:
    def matrix(self) -> EmissionMatrix:
        return EmissionMatrix(
            matrix=np.array([[0.75, 0.15, 0.10], [0.05, 0.90, 0.05]]),
            state_ids=(0, 1),
            symbol_ids=(0, 1, 2),
        )

    def test_floors_small_entries_and_renormalises(self):
        denoised = self.matrix().denoised(0.2)
        assert np.allclose(denoised.matrix[0], [1.0, 0.0, 0.0])
        assert np.allclose(denoised.matrix[1], [0.0, 1.0, 0.0])

    def test_preserves_large_splits(self):
        emission = EmissionMatrix(
            matrix=np.array([[0.35, 0.65]]),
            state_ids=(0,),
            symbol_ids=(0, 1),
        )
        denoised = emission.denoised(0.2)
        assert np.allclose(denoised.matrix, [[0.35, 0.65]])

    def test_all_small_row_keeps_maximum(self):
        emission = EmissionMatrix(
            matrix=np.array([[0.15, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.25]]),
            state_ids=(0,),
            symbol_ids=tuple(range(8)),
        )
        denoised = emission.denoised(0.5)
        assert np.allclose(denoised.matrix[0, -1], 1.0)

    def test_zero_floor_is_identity(self):
        emission = self.matrix()
        assert emission.denoised(0.0) is emission

    def test_rejects_bad_floor(self):
        with pytest.raises(ValueError):
            self.matrix().denoised(1.0)
