"""Unit tests for repro.core.identification (Eqs. 2-4)."""

import numpy as np
import pytest

from repro.core.clustering import OnlineStateClusterer
from repro.core.identification import identify_window


@pytest.fixture
def clusterer() -> OnlineStateClusterer:
    return OnlineStateClusterer(
        initial_vectors=[
            np.array([10.0, 90.0]),
            np.array([20.0, 70.0]),
            np.array([30.0, 50.0]),
        ],
        alpha=0.1,
        spawn_threshold=8.0,
        merge_threshold=3.0,
    )


class TestEq3Mapping:
    def test_each_sensor_mapped_to_nearest_state(self, clusterer):
        per_sensor = {
            0: np.array([11.0, 89.0]),
            1: np.array([29.0, 51.0]),
        }
        ident = identify_window(clusterer, per_sensor)
        assert ident.sensor_states[0] == 0
        assert ident.sensor_states[1] == 2


class TestEq2Observable:
    def test_observable_from_overall_mean(self, clusterer):
        per_sensor = {0: np.array([10.0, 90.0]), 1: np.array([10.0, 90.0])}
        ident = identify_window(
            clusterer, per_sensor, overall_mean=np.array([30.0, 50.0])
        )
        assert ident.observable_state == 2

    def test_observable_defaults_to_sensor_mean(self, clusterer):
        per_sensor = {0: np.array([10.0, 90.0]), 1: np.array([30.0, 50.0])}
        ident = identify_window(clusterer, per_sensor)
        # Mean is (20, 70) -> state 1.
        assert ident.observable_state == 1


class TestEq4Correct:
    def test_majority_cluster_wins(self, clusterer):
        per_sensor = {
            0: np.array([10.0, 90.0]),
            1: np.array([11.0, 91.0]),
            2: np.array([9.0, 89.0]),
            3: np.array([30.0, 50.0]),
        }
        ident = identify_window(clusterer, per_sensor)
        assert ident.correct_state == 0
        assert ident.majority_size == 3
        assert ident.n_sensors == 4
        assert ident.majority_fraction == pytest.approx(0.75)

    def test_tie_broken_toward_global_mean(self, clusterer):
        # Two sensors at state 0, two at state 2; the overall mean is
        # nearer state 2 because of an outlier-weighted mean.
        per_sensor = {
            0: np.array([10.0, 90.0]),
            1: np.array([10.0, 90.0]),
            2: np.array([30.0, 50.0]),
            3: np.array([30.0, 50.0]),
        }
        ident = identify_window(
            clusterer, per_sensor, overall_mean=np.array([28.0, 52.0])
        )
        assert ident.correct_state == 2

    def test_disagreeing_sensors_listed(self, clusterer):
        per_sensor = {
            0: np.array([10.0, 90.0]),
            1: np.array([10.0, 90.0]),
            2: np.array([30.0, 50.0]),
        }
        ident = identify_window(clusterer, per_sensor)
        assert ident.disagreeing_sensors() == [2]

    def test_empty_window_rejected(self, clusterer):
        with pytest.raises(ValueError):
            identify_window(clusterer, {})

    def test_single_sensor_is_its_own_majority(self, clusterer):
        ident = identify_window(clusterer, {5: np.array([20.0, 70.0])})
        assert ident.correct_state == 1
        assert ident.majority_fraction == 1.0
        assert ident.disagreeing_sensors() == []
