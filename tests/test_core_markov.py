"""Unit tests for repro.core.markov (M_C / M_O estimation)."""

import numpy as np
import pytest

from repro.core.markov import compare_models, estimate_markov_model


class TestEstimation:
    def test_transition_probabilities_from_counts(self):
        model = estimate_markov_model([0, 0, 1, 0, 0, 1])
        # From 0: 0->0 twice, 0->1 twice; from 1: 1->0 once.
        i0 = model.state_ids.index(0)
        i1 = model.state_ids.index(1)
        assert model.transition[i0, i0] == pytest.approx(0.5)
        assert model.transition[i0, i1] == pytest.approx(0.5)
        assert model.transition[i1, i0] == pytest.approx(1.0)

    def test_rows_stochastic(self):
        model = estimate_markov_model([2, 1, 2, 0, 1, 1, 2])
        assert np.allclose(model.transition.sum(axis=1), 1.0)

    def test_terminal_state_becomes_self_loop(self):
        model = estimate_markov_model([0, 1])
        i1 = model.state_ids.index(1)
        assert model.transition[i1, i1] == pytest.approx(1.0)

    def test_visit_counts(self):
        model = estimate_markov_model([0, 0, 1])
        assert model.visit_counts[model.state_ids.index(0)] == 2
        assert model.visit_counts[model.state_ids.index(1)] == 1

    def test_visit_fraction(self):
        model = estimate_markov_model([0, 0, 0, 1])
        assert model.visit_fraction(0) == pytest.approx(0.75)

    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError):
            estimate_markov_model([])

    def test_state_vectors_attached(self):
        vectors = {0: np.array([12.0, 94.0]), 1: np.array([31.0, 56.0])}
        model = estimate_markov_model([0, 1, 0], state_vectors=vectors)
        assert model.label(0) == "(12,94)"
        assert model.label(1) == "(31,56)"

    def test_label_fallback_without_vectors(self):
        model = estimate_markov_model([5, 5])
        assert model.label(5) == "s5"

    def test_smoothing_spreads_mass(self):
        raw = estimate_markov_model([0, 1, 0, 1])
        smoothed = estimate_markov_model([0, 1, 0, 1], smoothing=1.0)
        i0 = raw.state_ids.index(0)
        assert raw.transition[i0, i0] == 0.0
        assert smoothed.transition[i0, i0] > 0.0


class TestGraphExport:
    def test_to_graph_nodes_and_edges(self):
        model = estimate_markov_model([0, 1, 0, 1, 1])
        graph = model.to_graph(min_probability=0.01)
        assert set(graph.nodes) == {0, 1}
        assert graph.has_edge(0, 1)

    def test_edge_set_excludes_self_loops(self):
        model = estimate_markov_model([0, 0, 0, 1])
        assert (0, 0) not in model.edge_set(min_probability=0.01)


class TestPruning:
    def test_spurious_state_dropped(self):
        # State 2 is visited once in 100 steps: spurious (Fig. 7 case).
        sequence = [0, 1] * 49 + [2, 0]
        model = estimate_markov_model(sequence)
        pruned = model.prune(min_visit_fraction=0.05)
        assert 2 not in pruned.state_ids
        assert set(pruned.state_ids) == {0, 1}

    def test_pruned_rows_renormalised(self):
        sequence = [0, 1] * 49 + [2, 0]
        pruned = estimate_markov_model(sequence).prune(0.05)
        assert np.allclose(pruned.transition.sum(axis=1), 1.0)

    def test_prune_keeps_everything_when_balanced(self):
        model = estimate_markov_model([0, 1, 0, 1])
        assert model.prune(0.1).n_states == 2

    def test_prune_never_empties_model(self):
        model = estimate_markov_model([0])
        assert model.prune(2.0).n_states == 1


class TestComparison:
    def test_identical_models_compare_equal(self):
        a = estimate_markov_model([0, 1, 2, 0, 1, 2])
        b = estimate_markov_model([0, 1, 2, 0, 1, 2])
        comparison = compare_models(a, b)
        assert comparison.same_structure
        assert comparison.only_in_first == 0

    def test_extra_state_breaks_structure(self):
        a = estimate_markov_model([0, 1, 0, 1])
        b = estimate_markov_model([0, 1, 3, 0, 1, 3])
        comparison = compare_models(a, b)
        assert not comparison.same_structure
        assert not comparison.same_state_count

    def test_edge_differences_counted(self):
        a = estimate_markov_model([0, 1, 0, 1])
        b = estimate_markov_model([1, 0, 0, 1, 1, 0])
        comparison = compare_models(a, b, min_probability=0.05)
        assert comparison.common_edges >= 1
