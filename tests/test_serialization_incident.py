"""Tests for analysis.serialization and analysis.incident."""

import json

import pytest

from repro import DetectionPipeline
from repro.analysis import (
    RECOVERY_ACTIONS,
    incident_report,
    load_report,
    pipeline_to_dict,
    recommended_action,
    save_report,
)
from repro.core.classification import AnomalyType, Diagnosis


class TestPipelineToDict:
    def test_document_shape(self, stuck_run):
        document = pipeline_to_dict(stuck_run.pipeline)
        assert document["format_version"] == 1
        assert document["n_windows"] == stuck_run.pipeline.n_windows
        assert document["diagnoses"]["6"]["anomaly_type"] == "stuck_at"
        assert document["system_diagnosis"]["anomaly_type"] == "none"
        assert len(document["tracks"]) >= 1

    def test_document_is_json_serialisable(self, stuck_run):
        text = json.dumps(pipeline_to_dict(stuck_run.pipeline))
        assert "stuck_at" in text

    def test_b_co_matrix_rows_present(self, stuck_run):
        document = pipeline_to_dict(stuck_run.pipeline)
        b_co = document["b_co"]
        assert len(b_co["matrix"]) == len(b_co["states"])
        assert all(len(row) == len(b_co["symbols"]) for row in b_co["matrix"])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            pipeline_to_dict(DetectionPipeline())


class TestSaveLoadRoundtrip:
    def test_roundtrip(self, stuck_run, tmp_path):
        path = tmp_path / "report.json"
        save_report(stuck_run.pipeline, path)
        summary = load_report(path)
        assert summary.system_anomaly is AnomalyType.NONE
        assert summary.sensor_anomalies[6] is AnomalyType.STUCK_AT
        assert summary.anomalous_sensors == [6]
        assert summary.n_windows == stuck_run.pipeline.n_windows
        assert summary.n_tracks >= 1

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(ValueError, match="version"):
            load_report(path)

    def test_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"format_version": 1, "n_windows": 3}))
        with pytest.raises(ValueError, match="missing"):
            load_report(path)


class TestIncidentReport:
    def test_healthy_report(self, clean_run):
        text = incident_report(clean_run.pipeline, title="GDI status")
        assert "GDI status" in text
        assert "network healthy" in text
        assert "system verdict" in text and ": none" in text

    def test_error_report_recommends_replacement(self, stuck_run):
        text = incident_report(stuck_run.pipeline)
        assert "stuck_at" in text
        assert "replacement" in text
        assert "SECURITY ALERT" not in text

    def test_attack_report_raises_security_alert(self, deletion_run):
        text = incident_report(deletion_run.pipeline)
        assert "SECURITY ALERT" in text
        assert "deletion" in text
        assert "isolate node" in text

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            incident_report(DetectionPipeline())


class TestRecoveryActions:
    def test_every_anomaly_type_has_an_action(self):
        for anomaly_type in AnomalyType:
            assert anomaly_type in RECOVERY_ACTIONS

    def test_attack_actions_are_security_actions(self):
        for anomaly_type in (
            AnomalyType.DYNAMIC_CREATION,
            AnomalyType.DYNAMIC_DELETION,
            AnomalyType.DYNAMIC_CHANGE,
            AnomalyType.MIXED,
        ):
            diagnosis = Diagnosis(anomaly_type=anomaly_type)
            assert "SECURITY" in recommended_action(diagnosis)

    def test_error_actions_are_maintenance_actions(self):
        for anomaly_type in (AnomalyType.STUCK_AT, AnomalyType.CALIBRATION):
            diagnosis = Diagnosis(anomaly_type=anomaly_type)
            assert "SECURITY" not in recommended_action(diagnosis)
