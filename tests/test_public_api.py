"""Public-API stability tests.

Downstream users import through the package ``__init__`` modules; these
tests pin that surface: every ``__all__`` name resolves, the version is
sane, and the headline entry points keep their signatures.
"""

import inspect

import pytest

import repro
import repro.analysis
import repro.baselines
import repro.clusters
import repro.core
import repro.experiments
import repro.faults
import repro.hmm
import repro.sensornet
import repro.traces

PACKAGES = [
    repro,
    repro.analysis,
    repro.baselines,
    repro.clusters,
    repro.core,
    repro.experiments,
    repro.faults,
    repro.hmm,
    repro.sensornet,
    repro.traces,
]


class TestAllNamesResolve:
    @pytest.mark.parametrize(
        "package", PACKAGES, ids=lambda p: p.__name__
    )
    def test_every_all_entry_exists(self, package):
        assert hasattr(package, "__all__"), package.__name__
        for name in package.__all__:
            assert hasattr(package, name), f"{package.__name__}.{name}"

    @pytest.mark.parametrize(
        "package", PACKAGES, ids=lambda p: p.__name__
    )
    def test_all_is_sorted(self, package):
        names = list(package.__all__)
        assert names == sorted(names), package.__name__


class TestVersion:
    def test_version_matches_pyproject_style(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)


class TestHeadlineSignatures:
    def test_detection_pipeline_signature(self):
        signature = inspect.signature(repro.DetectionPipeline.__init__)
        assert list(signature.parameters) == ["self", "config", "initial_states"]

    def test_process_window_takes_one_window(self):
        signature = inspect.signature(
            repro.DetectionPipeline.process_window
        )
        assert list(signature.parameters) == ["self", "window"]

    def test_pipeline_config_table1_fields(self):
        config = repro.PipelineConfig()
        for field_name in (
            "n_sensors",
            "n_initial_states",
            "window_samples",
            "alpha",
            "beta",
            "gamma",
        ):
            assert hasattr(config, field_name)

    def test_anomaly_taxonomy_is_complete(self):
        values = {t.value for t in repro.AnomalyType}
        assert {
            "stuck_at",
            "calibration",
            "additive",
            "random_noise",
            "creation",
            "deletion",
            "change",
            "mixed",
        } <= values


class TestDocstrings:
    @pytest.mark.parametrize(
        "package", PACKAGES, ids=lambda p: p.__name__
    )
    def test_packages_documented(self, package):
        assert package.__doc__ and len(package.__doc__.strip()) > 20

    def test_public_core_classes_documented(self):
        for name in repro.core.__all__:
            obj = getattr(repro.core, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"repro.core.{name} lacks a docstring"
