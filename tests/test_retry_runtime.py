"""Fault-tolerant campaign runtime: retries, deadlines, chaos, quarantine.

The executor contract (DESIGN.md §12): any interleaving of worker
crashes, hangs, exceptions, retries, and pool rebuilds yields outcomes
bit-identical to a clean serial run for every non-quarantined spec —
the scenario always rebuilds from its spec's own seed, so recovery
machinery can never change a result, only delay it.
"""

from __future__ import annotations

import pytest

from repro.experiments.retry import RetryPolicy, TaskError
from repro.experiments.runner import (
    CampaignReport,
    ScenarioOutcome,
    ScenarioSpec,
    campaign_spec_key,
    run_campaign,
    run_scenarios_parallel,
)
from repro.resilience.chaos import (
    SimulatedWorkerCrash,
    WorkerChaos,
    WorkerChaosError,
)

SPECS = [
    ScenarioSpec("clean", n_days=1, seed=17),
    ScenarioSpec("stuck_at", n_days=1, seed=17),
    ScenarioSpec("calibration", n_days=1, seed=23),
]
KEYS = [campaign_spec_key(spec) for spec in SPECS]

#: No sleeping in tests — retry scheduling never affects results.
FAST = dict(backoff_base=0.0)


@pytest.fixture(scope="module")
def serial_outcomes():
    return run_scenarios_parallel(SPECS, n_jobs=1)


def _seed_where(predicate, limit=10_000):
    """First chaos seed whose deterministic draws satisfy ``predicate``."""
    for seed in range(limit):
        if predicate(seed):
            return seed
    raise AssertionError("no chaos seed found; loosen the predicate")


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(backoff_base=0.1)
        assert policy.delay("k", 2) == policy.delay("k", 2)
        assert policy.delay("k", 2) != policy.delay("other", 2)

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_cap=0.4, backoff_jitter=0.0
        )
        assert policy.delay("k", 2) == pytest.approx(0.1)
        assert policy.delay("k", 3) == pytest.approx(0.2)
        assert policy.delay("k", 4) == pytest.approx(0.4)
        assert policy.delay("k", 9) == pytest.approx(0.4)  # capped

    def test_jitter_bounded(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_cap=10.0, backoff_jitter=0.5
        )
        for attempt in range(2, 8):
            raw = 0.1 * 2 ** (attempt - 2)
            delay = policy.delay("key", attempt)
            assert raw <= delay <= raw * 1.5

    def test_zero_base_never_sleeps(self):
        assert RetryPolicy(backoff_base=0.0).delay("k", 5) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_retries=-1),
            dict(task_timeout=0.0),
            dict(task_timeout=-1.0),
            dict(backoff_base=-0.1),
            dict(backoff_base=1.0, backoff_cap=0.5),
            dict(backoff_jitter=-0.5),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestWorkerChaos:
    def test_draw_is_deterministic_and_per_attempt(self):
        chaos = WorkerChaos(kill_probability=0.5, seed=3)
        draws = [chaos.draw("key", attempt) for attempt in range(1, 20)]
        assert draws == [chaos.draw("key", a) for a in range(1, 20)]
        assert "kill" in draws and None in draws  # both bands hit

    def test_bands_partition(self):
        assert WorkerChaos(kill_probability=1.0).draw("k", 1) == "kill"
        assert WorkerChaos(hang_probability=1.0).draw("k", 1) == "hang"
        assert (
            WorkerChaos(exception_probability=1.0).draw("k", 1) == "exception"
        )
        assert WorkerChaos().draw("k", 1) is None

    def test_seed_changes_draws(self):
        kills = [
            WorkerChaos(kill_probability=0.5, seed=s).draw("key", 1)
            for s in range(40)
        ]
        assert set(kills) == {"kill", None}

    def test_apply_injects_exception(self):
        chaos = WorkerChaos(exception_probability=1.0)
        with pytest.raises(WorkerChaosError):
            chaos.apply("key", 1)

    def test_apply_inline_degrades_kill_and_hang(self):
        with pytest.raises(SimulatedWorkerCrash):
            WorkerChaos(kill_probability=1.0).apply("key", 1, inline=True)
        with pytest.raises(SimulatedWorkerCrash):
            WorkerChaos(hang_probability=1.0).apply("key", 1, inline=True)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kill_probability=-0.1),
            dict(hang_probability=1.5),
            dict(kill_probability=0.6, hang_probability=0.6),
            dict(hang_seconds=-1.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkerChaos(**kwargs)


class TestOutcomeFields:
    def test_defaults_mark_success(self, serial_outcomes):
        outcome = serial_outcomes[0]
        assert outcome.error == ""
        assert outcome.attempts == 1
        assert not outcome.quarantined

    def test_attempts_excluded_from_equality(self, serial_outcomes):
        from dataclasses import replace

        retried = replace(serial_outcomes[0], attempts=4)
        assert retried == serial_outcomes[0]

    def test_json_round_trip(self, serial_outcomes):
        import json

        for outcome in serial_outcomes:
            payload = json.loads(json.dumps(outcome.to_json_dict()))
            assert ScenarioOutcome.from_json_dict(payload) == outcome


class TestInlineRecovery:
    """Serial path: same retry/quarantine semantics, no pool."""

    def test_retry_then_success_is_bit_identical(self, serial_outcomes):
        # A seed whose first attempt on spec 0 fails but second succeeds.
        key = KEYS[0]
        seed = _seed_where(
            lambda s: (
                WorkerChaos(exception_probability=0.5, seed=s).draw(key, 1)
                == "exception"
                and WorkerChaos(exception_probability=0.5, seed=s).draw(
                    key, 2
                )
                is None
            )
        )
        chaos = WorkerChaos(exception_probability=0.5, seed=seed)
        report = run_campaign(
            SPECS[:1],
            n_jobs=1,
            chaos=chaos,
            policy=RetryPolicy(max_retries=2, **FAST),
        )
        assert report.outcomes == serial_outcomes[:1]
        assert report.outcomes[0].digest == serial_outcomes[0].digest
        assert report.outcomes[0].attempts == 2
        assert report.n_retries == 1
        assert report.ok

    def test_poison_spec_is_quarantined_not_fatal(self, serial_outcomes):
        chaos = WorkerChaos(exception_probability=1.0)
        report = run_campaign(
            SPECS,
            n_jobs=1,
            chaos=chaos,
            policy=RetryPolicy(max_retries=1, **FAST),
        )
        # Every spec fails every attempt; the campaign still returns.
        assert len(report.outcomes) == len(SPECS)
        assert [o.quarantined for o in report.outcomes] == [True] * 3
        assert all(o.attempts == 2 for o in report.outcomes)
        assert all("WorkerChaosError" in o.error for o in report.outcomes)
        assert all(o.digest == "" for o in report.outcomes)
        assert not report.ok
        assert len(report.quarantined) == 3

    def test_partial_poison_salvages_the_rest(self, serial_outcomes):
        # Poison only spec 1; specs 0 and 2 must come through untouched.
        key = KEYS[1]
        seed = _seed_where(
            lambda s: all(
                WorkerChaos(exception_probability=0.35, seed=s).draw(
                    key, a
                )
                == "exception"
                for a in (1, 2)
            )
            and all(
                WorkerChaos(exception_probability=0.35, seed=s).draw(k, a)
                is None
                for k in (KEYS[0], KEYS[2])
                for a in (1,)
            )
        )
        chaos = WorkerChaos(exception_probability=0.35, seed=seed)
        report = run_campaign(
            SPECS,
            n_jobs=1,
            chaos=chaos,
            policy=RetryPolicy(max_retries=1, **FAST),
        )
        assert report.outcomes[1].quarantined
        assert report.outcomes[0] == serial_outcomes[0]
        assert report.outcomes[2] == serial_outcomes[2]
        # Quarantined placeholders carry the spec key (no run label).
        assert report.outcomes[1].name == SPECS[1].name

    def test_simulated_kill_counts_as_worker_crash(self):
        chaos = WorkerChaos(kill_probability=1.0)
        report = run_campaign(
            SPECS[:1],
            n_jobs=1,
            chaos=chaos,
            policy=RetryPolicy(max_retries=1, **FAST),
        )
        assert report.n_worker_crashes == 2
        assert report.outcomes[0].quarantined
        assert "worker-crash" in report.outcomes[0].error


class TestPoolRecovery:
    """Real process pool: SIGKILLed workers, hung workers, rebuilds."""

    def test_worker_kills_recovered_bit_identically(self, serial_outcomes):
        # At least one first-attempt kill, guaranteed by seed search.
        chaos_for = lambda s: WorkerChaos(kill_probability=0.4, seed=s)
        seed = _seed_where(
            lambda s: any(
                chaos_for(s).draw(key, 1) == "kill" for key in KEYS
            )
            and all(
                any(chaos_for(s).draw(key, a) is None for a in (1, 2, 3, 4))
                for key in KEYS
            )
        )
        report = run_campaign(
            SPECS,
            n_jobs=2,
            chaos=chaos_for(seed),
            policy=RetryPolicy(max_retries=5, **FAST),
        )
        assert report.outcomes == serial_outcomes
        assert [o.digest for o in report.outcomes] == [
            o.digest for o in serial_outcomes
        ]
        assert report.n_worker_crashes >= 1
        assert report.n_pool_rebuilds >= 1
        assert report.ok

    def test_hung_worker_times_out_and_recovers(self, serial_outcomes):
        # Exactly one spec hangs on its first attempt, then runs clean.
        chaos_for = lambda s: WorkerChaos(
            hang_probability=0.3, hang_seconds=600.0, seed=s
        )
        seed = _seed_where(
            lambda s: sum(
                chaos_for(s).draw(key, 1) == "hang" for key in KEYS
            )
            == 1
            and all(
                chaos_for(s).draw(key, a) is None
                for key in KEYS
                for a in (2, 3)
            )
        )
        report = run_campaign(
            SPECS,
            n_jobs=2,
            chaos=chaos_for(seed),
            policy=RetryPolicy(max_retries=3, task_timeout=3.0, **FAST),
        )
        assert report.outcomes == serial_outcomes
        assert report.n_timeouts >= 1
        assert report.n_pool_rebuilds >= 1
        assert report.ok

    def test_no_orphaned_workers_after_recovery(self):
        import multiprocessing
        import time

        chaos = WorkerChaos(kill_probability=0.5, seed=5)
        run_campaign(
            SPECS,
            n_jobs=2,
            chaos=chaos,
            policy=RetryPolicy(max_retries=6, **FAST),
        )
        # The final pool context-exits; rebuilt pools' workers must all
        # have been reclaimed too (SIGTERM + join in _shutdown_pool).
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children():
            assert time.monotonic() < deadline, (
                f"orphaned workers: {multiprocessing.active_children()}"
            )
            time.sleep(0.1)


class TestBackwardCompatibility:
    def test_run_scenarios_parallel_unchanged_signature(
        self, serial_outcomes
    ):
        assert run_scenarios_parallel(SPECS, n_jobs=1) == serial_outcomes

    def test_report_stats_line(self):
        report = CampaignReport(outcomes=[], n_retries=3, n_timeouts=1)
        line = report.stats_line()
        assert "retries=3" in line and "timeouts=1" in line
        assert report.ok

    def test_task_error_describe(self):
        error = TaskError(kind="timeout", message="too slow")
        assert error.describe() == "timeout: too slow"
        error = TaskError("exception", "boom", "Traceback ...\n")
        assert error.describe() == "exception: boom\nTraceback ..."
