"""Unit tests for repro.hmm.baum_welch (EM training)."""

import numpy as np
import pytest

from repro.hmm import (
    DiscreteHMM,
    baum_welch,
    fit_random_restarts,
    log_likelihood,
    sample_sequence,
)


@pytest.fixture
def ground_truth() -> DiscreteHMM:
    """A well-separated two-state model that EM should recover."""
    return DiscreteHMM(
        transition=[[0.9, 0.1], [0.2, 0.8]],
        emission=[[0.95, 0.05], [0.1, 0.9]],
        initial=[0.5, 0.5],
    )


class TestBaumWelch:
    def test_likelihood_is_monotone_nondecreasing(self, ground_truth, rng):
        data = sample_sequence(ground_truth, 300, rng).observations
        start = DiscreteHMM.random(2, 2, rng)
        result = baum_welch(start, [data], max_iterations=20)
        diffs = np.diff(result.log_likelihoods)
        assert np.all(diffs > -1e-6)

    def test_improves_over_initial_model(self, ground_truth, rng):
        data = sample_sequence(ground_truth, 300, rng).observations
        start = DiscreteHMM.random(2, 2, rng)
        result = baum_welch(start, [data], max_iterations=30)
        assert log_likelihood(result.model, data) > log_likelihood(start, data)

    def test_result_matrices_are_stochastic(self, ground_truth, rng):
        data = sample_sequence(ground_truth, 100, rng).observations
        result = baum_welch(DiscreteHMM.uniform(2, 2), [data])
        assert np.allclose(result.model.transition.sum(axis=1), 1.0)
        assert np.allclose(result.model.emission.sum(axis=1), 1.0)
        assert np.isclose(result.model.initial.sum(), 1.0)

    def test_converges_on_easy_data(self, ground_truth, rng):
        data = sample_sequence(ground_truth, 400, rng).observations
        result = baum_welch(
            DiscreteHMM.random(2, 2, rng), [data], max_iterations=100, tol=1e-5
        )
        assert result.converged
        assert result.iterations < 100

    def test_multiple_sequences_supported(self, ground_truth, rng):
        seqs = [
            sample_sequence(ground_truth, 80, rng).observations
            for _ in range(4)
        ]
        result = baum_welch(DiscreteHMM.random(2, 2, rng), seqs)
        assert len(result.log_likelihoods) >= 1

    def test_rejects_empty_sequence_list(self, rng):
        with pytest.raises(ValueError):
            baum_welch(DiscreteHMM.random(2, 2, rng), [])

    def test_no_zero_probabilities_after_smoothing(self, ground_truth, rng):
        data = sample_sequence(ground_truth, 100, rng).observations
        result = baum_welch(DiscreteHMM.uniform(2, 2), [data])
        assert np.all(result.model.emission > 0.0)
        assert np.all(result.model.transition > 0.0)


class TestFitRandomRestarts:
    def test_best_of_restarts_at_least_as_good(self, ground_truth, rng):
        data = sample_sequence(ground_truth, 200, rng).observations
        single = baum_welch(
            DiscreteHMM.random(2, 2, np.random.default_rng(0)), [data]
        )
        multi = fit_random_restarts(
            2, 2, [data], np.random.default_rng(0), n_restarts=4
        )
        assert multi.log_likelihoods[-1] >= single.log_likelihoods[-1] - 1e-6

    def test_recovers_emission_structure(self, ground_truth, rng):
        data = sample_sequence(ground_truth, 800, rng).observations
        result = fit_random_restarts(
            2, 2, [data], np.random.default_rng(7), n_restarts=4,
            max_iterations=80,
        )
        emission = result.model.emission
        # Up to state relabelling, one state should emit mostly symbol 0
        # and the other mostly symbol 1.
        best = max(emission[0, 0] * emission[1, 1], emission[0, 1] * emission[1, 0])
        assert best > 0.6

    def test_rejects_zero_restarts(self, rng):
        with pytest.raises(ValueError):
            fit_random_restarts(2, 2, [[0, 1]], rng, n_restarts=0)
