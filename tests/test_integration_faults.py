"""End-to-end fault scenarios: the §4.1 reproduction assertions.

All runs share the 14-day session-scoped scenario fixtures; assertions
target the *shape* results DESIGN.md §5 commits to.
"""

import numpy as np
import pytest

from repro.core.classification import AnomalyCategory, AnomalyType


class TestCleanDeployment:
    def test_no_tracks_on_clean_data(self, clean_run):
        assert clean_run.pipeline.tracks.n_tracks == 0

    def test_system_diagnosis_none(self, clean_run):
        assert (
            clean_run.pipeline.system_diagnosis().anomaly_type
            is AnomalyType.NONE
        )

    def test_correct_model_has_main_diurnal_states(self, clean_run):
        model = clean_run.pipeline.correct_model(prune=True)
        assert 3 <= model.n_states <= 7
        temps = sorted(
            float(model.state_vectors[s][0]) for s in model.state_ids
        )
        hums = [
            float(model.state_vectors[s][1])
            for s in sorted(
                model.state_ids, key=lambda s: model.state_vectors[s][0]
            )
        ]
        # Cold-humid through hot-dry ordering along the diurnal ladder.
        assert temps[0] < 18 and temps[-1] > 27
        assert hums[0] > hums[-1]

    def test_false_alarm_rate_order_of_paper(self, clean_run):
        # Paper Fig. 12: ~1.5% raw false alarms on a healthy node.
        gen = clean_run.pipeline.alarm_generator
        rates = [gen.alarm_rate(s) for s in sorted(gen.sensors_seen())]
        assert max(rates) < 0.08
        assert float(np.mean(rates)) < 0.04

    def test_observable_tracks_correct_on_clean_data(self, clean_run):
        pipeline = clean_run.pipeline
        agree = sum(
            1
            for c, o in zip(pipeline.correct_sequence, pipeline.observable_sequence)
            if c == o
        )
        assert agree / len(pipeline.correct_sequence) > 0.95


class TestStuckAtSensor:
    def test_faulty_sensor_tracked(self, stuck_run):
        tracked = {t.sensor_id for t in stuck_run.pipeline.tracks.tracks}
        assert 6 in tracked

    def test_no_healthy_sensor_tracked(self, stuck_run):
        tracked = {t.sensor_id for t in stuck_run.pipeline.tracks.tracks}
        assert tracked == {6}

    def test_classified_stuck_at(self, stuck_run):
        diagnosis = stuck_run.pipeline.diagnose_sensor(6)
        assert diagnosis is not None
        assert diagnosis.anomaly_type is AnomalyType.STUCK_AT
        assert diagnosis.category is AnomalyCategory.ERROR

    def test_stuck_vector_recovered(self, stuck_run):
        diagnosis = stuck_run.pipeline.diagnose_sensor(6)
        stuck_vector = diagnosis.evidence.get("stuck_vector")
        assert stuck_vector is not None
        assert np.allclose(stuck_vector, [15.0, 1.0], atol=3.0)

    def test_system_level_not_an_attack(self, stuck_run):
        assert (
            stuck_run.pipeline.system_diagnosis().anomaly_type
            is AnomalyType.NONE
        )

    def test_detection_latency_reasonable(self, stuck_run):
        track = stuck_run.pipeline.track_for(6)
        onset_window = int(2 * 24 * 60 / 60) + 1  # day-2 onset, 1h windows
        latency = track.opened_window - onset_window
        assert 0 <= latency <= 12


class TestCalibrationSensor:
    def test_classified_calibration(self, calibration_run):
        diagnosis = calibration_run.pipeline.diagnose_sensor(7)
        assert diagnosis is not None
        assert diagnosis.anomaly_type is AnomalyType.CALIBRATION

    def test_ratio_statistics_shape(self, calibration_run):
        diagnosis = calibration_run.pipeline.diagnose_sensor(7)
        comparison = diagnosis.evidence.get("comparison")
        assert comparison is not None
        # Paper Tables 4-5: low ratio variance, ratios off unity.
        assert comparison.ratio_mean is not None
        assert np.any(np.abs(comparison.ratio_mean - 1.0) > 0.04)
        rel = comparison.ratio_std / np.abs(comparison.ratio_mean)
        assert np.all(rel < 0.12)


class TestAdditiveSensor:
    def test_classified_additive(self, additive_run):
        diagnosis = additive_run.pipeline.diagnose_sensor(3)
        assert diagnosis is not None
        assert diagnosis.anomaly_type is AnomalyType.ADDITIVE

    def test_difference_statistics_shape(self, additive_run):
        diagnosis = additive_run.pipeline.diagnose_sensor(3)
        comparison = diagnosis.evidence.get("comparison")
        assert comparison is not None
        # Injected offsets were (6, 12); recovered differences should be
        # near (-6, -12) in the paper's correct-minus-error convention.
        assert np.allclose(comparison.diff_mean, [-6.0, -12.0], atol=4.0)


class TestRandomNoiseSensor:
    def test_random_noise_is_not_misattributed(self, noise_run):
        # Paper §3.4: a random-noise error has no fixed B^CE pattern and
        # "can be misclassified as being in an error-free system state".
        diagnosis = noise_run.pipeline.diagnose_sensor(4)
        if diagnosis is not None:
            assert diagnosis.anomaly_type in (
                AnomalyType.NONE,
                AnomalyType.UNKNOWN_ERROR,
            )

    def test_system_level_clean(self, noise_run):
        assert (
            noise_run.pipeline.system_diagnosis().anomaly_type
            is AnomalyType.NONE
        )


class TestFaultySensorsScenario:
    """The paper's combined §4.1 study (sensors 6 and 7 together)."""

    def test_both_faulty_sensors_tracked(self, faulty_run):
        tracked = {t.sensor_id for t in faulty_run.pipeline.tracks.tracks}
        assert {6, 7} <= tracked

    def test_sensor6_stuck_sensor7_calibration(self, faulty_run):
        d6 = faulty_run.pipeline.diagnose_sensor(6)
        d7 = faulty_run.pipeline.diagnose_sensor(7)
        assert d6.anomaly_type is AnomalyType.STUCK_AT
        assert d7.anomaly_type is AnomalyType.CALIBRATION

    def test_healthy_sensors_undiagnosed(self, faulty_run):
        diagnoses = faulty_run.pipeline.diagnose_all()
        flagged = {
            s
            for s, d in diagnoses.items()
            if d.anomaly_type is not AnomalyType.NONE
        }
        assert flagged <= {6, 7}
