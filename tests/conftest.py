"""Shared fixtures for the test suite.

Heavy end-to-end scenario runs are session-cached through
:func:`repro.experiments.cached_scenario` (an ``lru_cache``), so many
integration tests can assert against the same simulated deployment
without re-running it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PipelineConfig
from repro.experiments import cached_scenario
from repro.sensornet import ConstantEnvironment, PiecewiseRegimeEnvironment

#: Short deployment length used by the integration scenarios: long
#: enough for onset + tracking + classification, short enough for CI.
TEST_DAYS = 14


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for per-test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def config() -> PipelineConfig:
    """The Table 1 default configuration."""
    return PipelineConfig()


@pytest.fixture
def constant_environment() -> ConstantEnvironment:
    """A fixed (20, 75) environment."""
    return ConstantEnvironment()


@pytest.fixture
def regime_environment() -> PiecewiseRegimeEnvironment:
    """A four-regime stepping environment with known ground truth."""
    return PiecewiseRegimeEnvironment()


@pytest.fixture(scope="session")
def clean_run():
    """A clean 14-day GDI scenario (shared across the session)."""
    return cached_scenario("clean", n_days=TEST_DAYS)


@pytest.fixture(scope="session")
def faulty_run():
    """The §4.1 faulty-sensors-6-and-7 scenario."""
    return cached_scenario("faulty", n_days=TEST_DAYS)


@pytest.fixture(scope="session")
def stuck_run():
    """A single stuck-at sensor scenario."""
    return cached_scenario("stuck_at", n_days=TEST_DAYS)


@pytest.fixture(scope="session")
def calibration_run():
    """A single calibration-fault scenario."""
    return cached_scenario("calibration", n_days=TEST_DAYS)


@pytest.fixture(scope="session")
def additive_run():
    """A single additive-fault scenario."""
    return cached_scenario("additive", n_days=TEST_DAYS)


@pytest.fixture(scope="session")
def noise_run():
    """A single random-noise-fault scenario."""
    return cached_scenario("random_noise", n_days=TEST_DAYS)


@pytest.fixture(scope="session")
def deletion_run():
    """The §4.2 dynamic-deletion attack scenario."""
    return cached_scenario("deletion", n_days=TEST_DAYS)


@pytest.fixture(scope="session")
def creation_run():
    """The §4.2 dynamic-creation attack scenario."""
    return cached_scenario("creation", n_days=TEST_DAYS)


@pytest.fixture(scope="session")
def change_run():
    """The dynamic-change attack scenario."""
    return cached_scenario("change", n_days=TEST_DAYS)


@pytest.fixture(scope="session")
def mixed_run():
    """The mixed (creation + deletion) attack scenario."""
    return cached_scenario("mixed", n_days=TEST_DAYS)
