"""Unit tests for repro.sensornet.network (lossy radio links)."""

import pytest

from repro.sensornet import RadioLink, SensorMessage, StarNetwork


def message(sensor_id: int = 0) -> SensorMessage:
    return SensorMessage(sensor_id=sensor_id, timestamp=0.0, attributes=(1.0,))


class TestRadioLink:
    def test_perfect_link_delivers_everything(self):
        link = RadioLink(loss_probability=0.0, corruption_probability=0.0)
        for _ in range(50):
            assert link.transmit(message()).delivered_ok

    def test_total_loss_delivers_nothing(self):
        link = RadioLink(loss_probability=1.0, corruption_probability=0.0)
        record = link.transmit(message())
        assert record.lost
        assert not record.delivered_ok

    def test_loss_rate_statistics(self):
        link = RadioLink(loss_probability=0.3, corruption_probability=0.0, seed=5)
        lost = sum(link.transmit(message()).lost for _ in range(4000))
        assert 0.25 < lost / 4000 < 0.35

    def test_corruption_produces_malformed(self):
        link = RadioLink(loss_probability=0.0, corruption_probability=1.0)
        record = link.transmit(message(sensor_id=7))
        assert record.malformed is not None
        assert record.malformed.sensor_id == 7
        assert not record.delivered_ok

    def test_quality_combines_both_processes(self):
        link = RadioLink(loss_probability=0.2, corruption_probability=0.1)
        assert abs(link.quality - 0.8 * 0.9) < 1e-12

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            RadioLink(loss_probability=1.5)

    def test_deterministic_given_seed(self):
        a = RadioLink(loss_probability=0.5, seed=3)
        b = RadioLink(loss_probability=0.5, seed=3)
        outcomes_a = [a.transmit(message()).lost for _ in range(100)]
        outcomes_b = [b.transmit(message()).lost for _ in range(100)]
        assert outcomes_a == outcomes_b


class TestStarNetwork:
    def test_homogeneous_builds_one_link_per_sensor(self):
        network = StarNetwork.homogeneous(range(5), loss_probability=0.1)
        assert set(network.links) == set(range(5))

    def test_links_have_independent_streams(self):
        network = StarNetwork.homogeneous(range(2), loss_probability=0.5, seed=1)
        a = [network.transmit(message(0)).lost for _ in range(200)]
        b = [network.transmit(message(1)).lost for _ in range(200)]
        assert a != b

    def test_unknown_sensor_gets_perfect_adhoc_link(self):
        network = StarNetwork.homogeneous([0], loss_probability=1.0)
        record = network.transmit(message(sensor_id=99))
        assert record.delivered_ok

    def test_routes_by_sensor_id(self):
        network = StarNetwork(
            links={
                0: RadioLink(loss_probability=1.0),
                1: RadioLink(loss_probability=0.0, corruption_probability=0.0),
            }
        )
        assert network.transmit(message(0)).lost
        assert network.transmit(message(1)).delivered_ok
