"""Unit tests for repro.faults.attacks (adversary models)."""

import numpy as np
import pytest

from repro.faults import (
    BenignAttack,
    DynamicChangeAttack,
    DynamicCreationAttack,
    DynamicDeletionAttack,
    MixedAttack,
    coordinated_report,
)
from repro.sensornet import SensorMessage


def msg(attrs=(13.0, 93.0), t=100.0) -> SensorMessage:
    return SensorMessage(sensor_id=0, timestamp=t, attributes=attrs)


RANGES = ((-10.0, 60.0), (0.0, 100.0))


class TestCoordinatedReport:
    def test_moves_mean_exactly_when_unclipped(self):
        truth = np.array([20.0, 70.0])
        target = np.array([24.0, 60.0])
        fraction = 0.4
        report = coordinated_report(truth, target, fraction, RANGES)
        mean = (1 - fraction) * truth + fraction * report
        assert np.allclose(mean, target)

    def test_clips_to_admissible_ranges(self):
        truth = np.array([20.0, 95.0])
        target = np.array([20.0, 40.0])  # needs humidity far below 0
        report = coordinated_report(truth, target, 0.2, RANGES)
        assert report[1] == 0.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            coordinated_report(np.zeros(2), np.zeros(2), 0.0, RANGES)


class TestDynamicCreationAttack:
    def test_injects_during_on_phase(self):
        attack = DynamicCreationAttack(
            target=(14.0, 55.0),
            fraction=0.4,
            period_minutes=240.0,
            on_fraction=0.5,
        )
        truth = np.array([13.0, 93.0])
        on = attack.corrupt(msg(), truth, elapsed_minutes=30.0)
        off = attack.corrupt(msg(), truth, elapsed_minutes=150.0)
        assert on.attributes != msg().attributes
        assert off.attributes == msg().attributes

    def test_mean_lands_on_target_during_injection(self):
        # Target chosen so the coordinated report stays unclipped.
        attack = DynamicCreationAttack(target=(14.0, 56.0), fraction=0.4)
        truth = np.array([13.0, 93.0])
        report = attack.corrupt(msg(), truth, 0.0).vector
        mean = 0.6 * truth + 0.4 * report
        assert np.allclose(mean, [14.0, 56.0], atol=1e-9)

    def test_trigger_region_gates_injection(self):
        attack = DynamicCreationAttack(
            trigger=(13.0, 93.0), trigger_radius=3.0, target=(14.0, 55.0)
        )
        inside = attack.corrupt(msg(), np.array([13.0, 93.0]), 0.0)
        outside = attack.corrupt(msg(), np.array([30.0, 60.0]), 0.0)
        assert inside.attributes != msg().attributes
        assert outside.attributes == msg().attributes

    def test_values_stay_in_admissible_range(self):
        attack = DynamicCreationAttack(target=(14.0, 5.0), fraction=0.1)
        report = attack.corrupt(msg(), np.array([13.0, 93.0]), 0.0).vector
        assert -10.0 <= report[0] <= 60.0
        assert 0.0 <= report[1] <= 100.0

    def test_is_malicious(self):
        attack = DynamicCreationAttack()
        assert attack.malicious and attack.kind == "creation"

    def test_rejects_bad_duty_cycle(self):
        with pytest.raises(ValueError):
            DynamicCreationAttack(on_fraction=0.0)
        with pytest.raises(ValueError):
            DynamicCreationAttack(period_minutes=0.0)


class TestDynamicDeletionAttack:
    def test_active_only_near_deleted_state(self):
        attack = DynamicDeletionAttack(
            deleted_state=(31.0, 57.0), hold_state=(24.0, 70.0), radius=5.0,
            fraction=0.4,
        )
        near = attack.corrupt(msg(), np.array([31.0, 57.0]), 0.0)
        far = attack.corrupt(msg(), np.array([13.0, 93.0]), 0.0)
        assert near.attributes != msg().attributes
        assert far.attributes == msg().attributes

    def test_holds_mean_at_hold_state(self):
        attack = DynamicDeletionAttack(
            deleted_state=(31.0, 57.0), hold_state=(24.0, 70.0), radius=5.0,
            fraction=0.4,
        )
        truth = np.array([31.0, 57.0])
        report = attack.corrupt(msg(), truth, 0.0).vector
        mean = 0.6 * truth + 0.4 * report
        assert np.allclose(mean, [24.0, 70.0], atol=1e-9)


class TestDynamicChangeAttack:
    def test_maps_each_state_to_its_image(self):
        attack = DynamicChangeAttack(
            mapping=(((10.0, 90.0), (2.0, 78.0)), ((30.0, 60.0), (22.0, 48.0))),
            fraction=0.5,
        )
        truth = np.array([10.0, 90.0])
        report = attack.corrupt(msg(), truth, 0.0).vector
        mean = 0.5 * truth + 0.5 * report
        assert np.allclose(mean, [2.0, 78.0], atol=1e-9)

    def test_nearest_source_selected(self):
        attack = DynamicChangeAttack(
            mapping=(((10.0, 90.0), (2.0, 78.0)), ((30.0, 60.0), (22.0, 48.0))),
            fraction=0.5,
        )
        truth = np.array([28.0, 62.0])  # nearest source is (30, 60)
        report = attack.corrupt(msg(), truth, 0.0).vector
        mean = 0.5 * truth + 0.5 * report
        assert np.allclose(mean, [22.0, 48.0], atol=1e-9)

    def test_rejects_non_injective_mapping(self):
        with pytest.raises(ValueError):
            DynamicChangeAttack(
                mapping=(
                    ((10.0, 90.0), (2.0, 78.0)),
                    ((30.0, 60.0), (2.0, 78.0)),
                )
            )

    def test_rejects_empty_mapping(self):
        with pytest.raises(ValueError):
            DynamicChangeAttack(mapping=())


class TestMixedAttack:
    def test_first_modifying_component_wins(self):
        attack = MixedAttack(
            components=(
                DynamicDeletionAttack(
                    deleted_state=(31.0, 57.0), hold_state=(24.0, 70.0),
                    radius=5.0, fraction=0.4,
                ),
                DynamicCreationAttack(
                    trigger=(13.0, 93.0), trigger_radius=3.0,
                    target=(14.0, 55.0), fraction=0.4,
                ),
            )
        )
        hot = attack.corrupt(msg(), np.array([31.0, 57.0]), 0.0)
        cold = attack.corrupt(msg(), np.array([13.0, 93.0]), 0.0)
        quiet = attack.corrupt(msg(), np.array([20.0, 78.0]), 0.0)
        assert hot.attributes != msg().attributes
        assert cold.attributes != msg().attributes
        assert quiet.attributes == msg().attributes

    def test_rejects_empty_components(self):
        with pytest.raises(ValueError):
            MixedAttack(components=())

    def test_kind(self):
        assert MixedAttack().kind == "mixed"


class TestBenignAttack:
    def test_reports_truth_plus_small_noise(self):
        attack = BenignAttack(mimic_noise_std=0.1, seed=4)
        truth = np.array([20.0, 75.0])
        reports = np.vstack(
            [attack.corrupt(msg((99.0, 99.0)), truth, 0.0).vector for _ in range(200)]
        )
        assert np.allclose(reports.mean(axis=0), truth, atol=0.1)

    def test_marked_malicious_but_benign_kind(self):
        attack = BenignAttack()
        assert attack.malicious
        assert attack.kind == "benign"
