"""Hardened ingest: collector quarantine (duplicate/late/non-finite),
delivery bookkeeping including the radio corruption branch, the empty
window shape regression, and the core NaN/Inf guards."""

import numpy as np
import pytest

from repro import DetectionPipeline, PipelineConfig
from repro.core.clustering import OnlineStateClusterer
from repro.core.identification import identify_window
from repro.sensornet import (
    CollectorNode,
    DeliveryRecord,
    DeliveryStats,
    ObservationWindow,
    RadioLink,
    SensorMessage,
)


def message(sensor_id=0, timestamp=1.0, seq=0, attributes=(20.0, 75.0)):
    return SensorMessage(
        sensor_id=sensor_id,
        timestamp=timestamp,
        attributes=attributes,
        sequence_number=seq,
    )


class TestEmptyWindowShape:
    def test_empty_window_has_attribute_width(self):
        """Regression: empty windows used to collapse to shape (0, 0)."""
        window = ObservationWindow(
            index=1,
            start_minutes=0.0,
            end_minutes=60.0,
            messages=(),
            n_attributes=2,
        )
        assert window.observations.shape == (0, 2)

    def test_default_width_is_zero_for_hand_built_fixtures(self):
        window = ObservationWindow(
            index=1, start_minutes=0.0, end_minutes=60.0, messages=()
        )
        assert window.observations.shape == (0, 0)

    def test_collector_emits_gap_windows_with_learned_width(self):
        collector = CollectorNode(window_minutes=60.0)
        collector.receive_message(message(timestamp=1.0))
        # Window 2 is empty (a radio blackout), window 3 has traffic.
        collector.receive_message(message(timestamp=121.0))
        windows = collector.pop_completed_windows(180.0)
        assert [w.index for w in windows] == [1, 2, 3]
        assert windows[1].is_empty
        assert windows[1].observations.shape == (0, 2)
        # Column-wise code works uniformly across the gap.
        stacked = np.vstack([w.observations for w in windows])
        assert stacked.shape == (2, 2)


class TestQuarantine:
    def test_duplicate_quarantined(self):
        collector = CollectorNode()
        collector.receive_message(message(timestamp=5.0, seq=3))
        collector.receive_message(message(timestamp=5.0, seq=3))
        assert collector.stats.accepted == 1
        assert collector.stats.duplicate == 1

    def test_distinct_sequence_numbers_both_accepted(self):
        collector = CollectorNode()
        collector.receive_message(message(timestamp=5.0, seq=3))
        collector.receive_message(message(timestamp=5.0, seq=4))
        assert collector.stats.accepted == 2
        assert collector.stats.duplicate == 0

    def test_same_key_different_sensor_accepted(self):
        collector = CollectorNode()
        collector.receive_message(message(sensor_id=0, timestamp=5.0, seq=3))
        collector.receive_message(message(sensor_id=1, timestamp=5.0, seq=3))
        assert collector.stats.accepted == 2

    def test_late_message_quarantined(self):
        collector = CollectorNode(window_minutes=60.0)
        collector.receive_message(message(timestamp=5.0))
        collector.pop_completed_windows(60.0)
        # Arrives after its window was emitted (delay or clock skew).
        collector.receive_message(message(timestamp=30.0, seq=9))
        assert collector.stats.late == 1
        assert collector.stats.accepted == 1

    def test_non_finite_message_quarantined(self):
        collector = CollectorNode()
        collector.receive_message(message(attributes=(float("nan"), 75.0)))
        collector.receive_message(message(attributes=(20.0, float("inf")), seq=1))
        collector.receive_message(message(seq=2))
        assert collector.stats.non_finite == 2
        assert collector.stats.accepted == 1

    def test_hardening_can_be_disabled(self):
        collector = CollectorNode(harden_ingest=False)
        collector.receive_message(message(timestamp=5.0, seq=3))
        collector.receive_message(message(timestamp=5.0, seq=3))
        collector.receive_message(message(attributes=(float("nan"), 1.0), seq=4))
        assert collector.stats.accepted == 3
        assert collector.stats.quarantined == 0

    def test_dedup_memory_pruned_after_emission(self):
        collector = CollectorNode(window_minutes=60.0)
        collector.receive_message(message(timestamp=5.0))
        collector.pop_completed_windows(60.0)
        assert collector._seen_keys[0] == set()

    def test_stats_accounting(self):
        stats = DeliveryStats(
            accepted=6, malformed=1, lost=2, duplicate=1, late=2, non_finite=0
        )
        assert stats.quarantined == 3
        assert stats.attempted == 12
        assert stats.acceptance_rate == pytest.approx(0.5)
        assert stats.as_dict() == {
            "accepted": 6,
            "malformed": 1,
            "lost": 2,
            "duplicate": 1,
            "late": 2,
            "non_finite": 0,
        }

    def test_drop_buffer_models_crash(self):
        collector = CollectorNode()
        collector.receive_message(message(timestamp=5.0))
        collector.receive_message(message(timestamp=6.0, seq=1))
        assert collector.drop_buffer() == 2
        windows = collector.pop_completed_windows(60.0)
        assert windows[0].is_empty
        # Indexing survives the crash: the next window is still window 2.
        collector.receive_message(message(timestamp=65.0, seq=2))
        (window,) = collector.pop_completed_windows(120.0)
        assert window.index == 2


class TestDeliveryBranches:
    def test_corruption_branch(self):
        link = RadioLink(loss_probability=0.0, corruption_probability=1.0)
        record = link.transmit(message())
        assert record.malformed is not None
        assert record.malformed.reason == "CRC failure"
        assert record.message is None
        assert not record.lost

    def test_loss_branch(self):
        link = RadioLink(loss_probability=1.0)
        record = link.transmit(message())
        assert record.lost
        assert record.message is None

    def test_collector_counts_all_outcomes(self):
        collector = CollectorNode()
        link_ok = RadioLink(loss_probability=0.0, corruption_probability=0.0)
        link_bad = RadioLink(loss_probability=0.0, corruption_probability=1.0)
        link_lossy = RadioLink(loss_probability=1.0)
        collector.receive(link_ok.transmit(message(seq=0)))
        collector.receive(link_bad.transmit(message(seq=1)))
        collector.receive(link_lossy.transmit(message(seq=2)))
        assert collector.stats.accepted == 1
        assert collector.stats.malformed == 1
        assert collector.stats.lost == 1
        assert collector.stats.attempted == 3


class TestCoreGuards:
    def test_clusterer_assign_rejects_non_finite(self):
        clusterer = OnlineStateClusterer(initial_vectors=[np.array([20.0, 75.0])])
        with pytest.raises(ValueError, match="non-finite"):
            clusterer.assign(np.array([np.nan, 75.0]))

    def test_clusterer_update_rejects_non_finite(self):
        clusterer = OnlineStateClusterer(initial_vectors=[np.array([20.0, 75.0])])
        with pytest.raises(ValueError, match="non-finite"):
            clusterer.update(np.array([[20.0, 75.0], [np.inf, 75.0]]))

    def test_clusterer_spawn_rejects_non_finite(self):
        clusterer = OnlineStateClusterer(initial_vectors=[np.array([20.0, 75.0])])
        with pytest.raises(ValueError, match="non-finite"):
            clusterer.maybe_spawn(np.array([np.nan, np.nan]))

    def test_identify_window_names_the_offending_sensor(self):
        clusterer = OnlineStateClusterer(initial_vectors=[np.array([20.0, 75.0])])
        per_sensor = {
            0: np.array([20.0, 75.0]),
            3: np.array([np.nan, 75.0]),
        }
        with pytest.raises(ValueError, match="sensor 3"):
            identify_window(
                clusterer, per_sensor, overall_mean=np.array([20.0, 75.0])
            )


def window_with_nan(index=1):
    """A window where sensor 2's reading is non-finite."""
    readings = {0: (20.0, 75.0), 1: (20.2, 74.8), 2: (np.nan, 75.0)}
    messages = tuple(
        message(sensor_id=sid, timestamp=(index - 1) * 60.0 + 1.0, attributes=attrs)
        for sid, attrs in sorted(readings.items())
    )
    return ObservationWindow(
        index=index,
        start_minutes=(index - 1) * 60.0,
        end_minutes=index * 60.0,
        messages=messages,
    )


class TestPipelineSanitizer:
    def test_non_finite_sensor_dropped_not_fatal(self):
        pipeline = DetectionPipeline(PipelineConfig())
        result = pipeline.process_window(window_with_nan())
        assert not result.skipped
        assert pipeline.n_non_finite_dropped == 1
        # The poisoned sensor never reached identification.
        assert 2 not in result.identification.sensor_states

    def test_overall_mean_excludes_non_finite_rows(self):
        pipeline = DetectionPipeline(PipelineConfig())
        pipeline.process_window(window_with_nan())
        for vector in pipeline.clusterer.states.vectors():
            assert np.all(np.isfinite(vector))

    def test_all_non_finite_window_is_skipped(self):
        pipeline = DetectionPipeline(PipelineConfig())
        readings = {0: (np.nan, 75.0), 1: (np.inf, 74.8)}
        messages = tuple(
            message(sensor_id=sid, attributes=attrs)
            for sid, attrs in sorted(readings.items())
        )
        window = ObservationWindow(
            index=1, start_minutes=0.0, end_minutes=60.0, messages=messages
        )
        result = pipeline.process_window(window)
        assert result.skipped
        assert pipeline.n_non_finite_dropped == 2

    def test_guard_can_be_disabled(self):
        config = PipelineConfig(drop_non_finite=False)
        pipeline = DetectionPipeline(config)
        with pytest.raises(ValueError):
            pipeline.process_window(window_with_nan())
