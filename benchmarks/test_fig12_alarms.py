"""F12 — Figure 12: raw alarms for a faulty vs a non-faulty node."""

from conftest import BENCH_DAYS, run_once

from repro.experiments import cached_scenario, figure12


def test_figure12_raw_alarm_streams(benchmark):
    run = cached_scenario("faulty", n_days=BENCH_DAYS)
    result = run_once(
        benchmark, lambda: figure12(run, faulty_sensor=6, healthy_sensor=9)
    )
    print("\n" + result.render())
    # Paper: the healthy node shows ~1.5% noisy raw alarms, the faulty
    # node alarms almost continuously once the fault manifests.
    assert result.healthy_rate < 0.05
    assert result.faulty_rate > 0.5
    assert result.faulty_rate > 10 * max(result.healthy_rate, 1e-6)
