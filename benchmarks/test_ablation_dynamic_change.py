"""A7 — ablation: Dynamic Change classification (left branch of Fig. 5)."""

from conftest import BENCH_DAYS, run_once

from repro.core.classification import AnomalyType
from repro.experiments import cached_scenario, dynamic_change_study


def test_dynamic_change_study(benchmark):
    result = run_once(benchmark, lambda: dynamic_change_study(n_days=14))
    print("\n" + result.render())
    assert "change" in result.title

    run = cached_scenario("change", n_days=BENCH_DAYS)
    diagnosis = run.pipeline.system_diagnosis()
    assert diagnosis.anomaly_type is AnomalyType.DYNAMIC_CHANGE
    # At least two of the remapped states were caught with attribute
    # displacement in every dimension.
    assert len(result.rows) >= 2
