"""A5 — ablation: full fault/attack classification accuracy matrix."""

from conftest import run_once

from repro.analysis import render_table
from repro.experiments import A5_EQUIVALENCES, classification_matrix


def test_classification_accuracy_matrix(benchmark):
    matrix, sweep = run_once(benchmark, lambda: classification_matrix(n_days=14))
    print("\n" + sweep.render())
    array, truths, labels = matrix.as_array()
    rows = [
        [truths[i]] + [int(x) for x in array[i]] for i in range(len(truths))
    ]
    print(
        "\n"
        + render_table(
            ["truth \\ diagnosed"] + labels,
            rows,
            title="Ablation A5 — confusion matrix",
        )
    )
    accuracy = matrix.accuracy(A5_EQUIVALENCES)
    print(f"\noverall accuracy (with documented equivalences): {accuracy:.2f}")
    # Every §3.3 fault/attack type must classify correctly in its
    # canonical scenario (random noise counts as correctly-unclassified,
    # the paper's own stated behaviour).
    assert accuracy >= 0.85
