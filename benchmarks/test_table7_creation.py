"""F11/T7 — Fig. 11 + Table 7: Dynamic Creation attack on B^CO."""

from conftest import BENCH_DAYS, run_once

from repro.core.classification import AnomalyType
from repro.experiments import cached_scenario, table7


def test_table7_dynamic_creation(benchmark):
    run = cached_scenario("creation", n_days=BENCH_DAYS)
    result = run_once(benchmark, lambda: table7(run))
    print("\n" + result.render())

    # Paper: column probabilities non-orthogonal — a correct state's row
    # splits between its own symbol and the created state (0.35/0.65 in
    # Table 7), and the created state has no corresponding hidden state.
    assert result.anomaly_type is AnomalyType.DYNAMIC_CREATION
    pairs = result.system_diagnosis.evidence.get("creation_pairs", ())
    assert pairs
    source, created = pairs[0]
    assert created not in result.b_co.state_ids

    row = result.b_co.row_of(source)
    symbols = {s: k for k, s in enumerate(result.b_co.symbol_ids)}
    own, spurious = row[symbols[source]], row[symbols[created]]
    print(
        f"\nrow split: own {own:.2f} / created {spurious:.2f} "
        "(paper Table 7: 0.3546 / 0.6454)"
    )
    assert own > 0.15 and spurious > 0.15

    assert set(result.compromised_sensors) <= set(result.tracked_sensors)
