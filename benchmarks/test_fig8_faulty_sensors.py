"""F8 — Figure 8: humidity over a week for faulty sensors 6, 7 vs healthy 9."""

from conftest import BENCH_DAYS, run_once

from repro.experiments import cached_scenario, figure8


def test_figure8_faulty_sensor_humidity(benchmark):
    run = cached_scenario("faulty", n_days=BENCH_DAYS)
    result = run_once(benchmark, lambda: figure8(run, start_day=7, n_days=7))
    print("\n" + result.render())
    # Paper shape: sensor 6's humidity decays toward (almost) zero;
    # sensor 7 reads about 10% above the healthy reference sensor 9.
    assert result.final_humidity(6) < 40.0
    assert result.final_humidity(9) > 50.0
    assert 1.05 < result.mean_ratio(7, reference_id=9) < 1.30
