"""A2 — ablation: the model-state learning factor alpha (Eq. 6)."""

from conftest import run_once

from repro.experiments import learning_factor_sweep


def test_learning_factor_sweep(benchmark):
    result = run_once(benchmark, lambda: learning_factor_sweep(n_days=10))
    print("\n" + result.render())
    # Every alpha in a sane range must keep the clean run clean: a small
    # number of model states and no (or almost no) spurious tracks.
    for row in result.rows:
        n_states = row[1]
        tracks = row[3]
        assert n_states <= 10
        assert tracks <= 2
