"""T4/T5 — Tables 4 & 5: B^CO / B^CE for faulty sensor 7 → calibration."""

import numpy as np
from conftest import BENCH_DAYS, run_once

from repro.core.classification import AnomalyType
from repro.experiments import cached_scenario, table4_5


def test_tables4_5_calibration_classification(benchmark):
    run = cached_scenario("faulty", n_days=BENCH_DAYS)
    result = run_once(benchmark, lambda: table4_5(run))
    print("\n" + result.render())

    assert result.diagnosis.anomaly_type is AnomalyType.CALIBRATION
    comparison = result.diagnosis.evidence.get("comparison")
    assert comparison is not None

    # Paper: ratios with average (1.24, 1.16) and low variance, while
    # differences have high variance — hence calibration, not additive.
    assert comparison.ratio_mean is not None
    assert np.any(np.abs(comparison.ratio_mean - 1.0) > 0.05)
    relative_dispersion = comparison.ratio_std / np.abs(comparison.ratio_mean)
    assert np.all(relative_dispersion < 0.12)
    print(
        "\nratio mean %s (paper: (1.24, 1.16)), ratio std %s (paper: low)"
        % (np.round(comparison.ratio_mean, 2), np.round(comparison.ratio_std, 3))
    )
