"""A4 — ablation: alarm filter comparison (k-of-n vs SPRT vs CUSUM)."""

from conftest import run_once

from repro.experiments import filter_comparison


def test_filter_comparison(benchmark):
    result = run_once(benchmark, lambda: filter_comparison(n_days=14))
    print("\n" + result.render())
    detected = {row[0]: row[1] for row in result.rows}
    latencies = {row[0]: row[2] for row in result.rows}
    false_tracks = {row[0]: row[3] for row in result.rows}
    # Every filter must detect a hard stuck-at fault...
    assert all(v == "yes" for v in detected.values())
    # ...within a handful of windows of its onset...
    assert all(0 <= lat <= 12 for lat in latencies.values())
    # ...without tracking more than a stray healthy sensor.
    assert all(n <= 1 for n in false_tracks.values())
