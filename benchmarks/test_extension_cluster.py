"""E1 — extension: the §6 cluster-monitoring scenario end to end.

The paper's conclusions propose applying the methodology to "a large
cluster of machines dedicated to running an e-commerce application";
this benchmark runs that extension with the unchanged pipeline.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.clusters import (
    cryptominer_campaign,
    dashboard_deletion_campaign,
    memory_leak_campaign,
    run_cluster_scenario,
)
from repro.core.classification import AnomalyType


def test_cluster_monitoring_extension(benchmark):
    def run_all():
        return {
            "memory-leak": run_cluster_scenario(
                n_days=6, campaign=memory_leak_campaign()
            ),
            "cryptominer": run_cluster_scenario(
                n_days=6, campaign=cryptominer_campaign()
            ),
            "dashboard-deletion": run_cluster_scenario(
                n_days=6, campaign=dashboard_deletion_campaign()
            ),
        }

    runs = run_once(benchmark, run_all)

    rows = []
    for name, run in runs.items():
        pipeline = run.pipeline
        tracked = sorted({t.sensor_id for t in pipeline.tracks.tracks})
        diagnoses = sorted(
            {d.anomaly_type.value for d in pipeline.diagnose_all().values()}
        )
        rows.append(
            (
                name,
                str(sorted(run.ground_truth)),
                str(tracked),
                pipeline.system_diagnosis().anomaly_type.value,
                ", ".join(diagnoses) or "none",
            )
        )
    print(
        "\n"
        + render_table(
            ("incident", "truth replicas", "tracked", "system", "diagnoses"),
            rows,
            title="Extension E1 — e-commerce cluster monitoring (§6)",
        )
    )

    leak = runs["memory-leak"]
    assert leak.pipeline.diagnose_sensor(4).anomaly_type is AnomalyType.STUCK_AT

    miner = runs["cryptominer"]
    assert 7 in {t.sensor_id for t in miner.pipeline.tracks.tracks}

    deletion = runs["dashboard-deletion"]
    assert (
        deletion.pipeline.system_diagnosis().anomaly_type
        is AnomalyType.DYNAMIC_DELETION
    )
    truth = set(deletion.campaign.malicious_sensor_ids())
    tracked = {t.sensor_id for t in deletion.pipeline.tracks.tracks}
    assert truth <= tracked
