"""F6 — Figure 6: temperature/humidity variation over one day (July 9)."""

from conftest import BENCH_DAYS, run_once

from repro.experiments import cached_scenario, figure6


def test_figure6_diurnal_variation(benchmark):
    run = cached_scenario("clean", n_days=BENCH_DAYS)
    result = run_once(benchmark, lambda: figure6(run, day_index=8))
    print("\n" + result.render())
    # Paper shape: temperature and humidity "change continuously during
    # the day", strongly anti-correlated, with a wide diurnal swing.
    low, high = result.temperature_range
    assert high - low > 10.0
    hum_low, hum_high = result.humidity_range
    assert hum_high - hum_low > 15.0
    assert result.anticorrelation() < -0.9
