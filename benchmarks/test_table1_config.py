"""T1 — Table 1: the experimental setup parameters."""

from conftest import run_once

from repro.experiments import table1


def test_table1_parameters(benchmark):
    result = run_once(benchmark, table1)
    print("\n" + result.render())
    assert result.value_of("K") == "10"
    assert result.value_of("M") == "6"
    assert result.value_of("w") == "12"
    assert result.value_of("alpha") == "0.10"
    assert result.value_of("beta") == "0.90"
    assert result.value_of("gamma") == "0.90"
