"""F7 — Figure 7: the correct Markov model M_C of the environment."""

from conftest import BENCH_DAYS, run_once

from repro.experiments import cached_scenario, figure7


def test_figure7_correct_markov_model(benchmark):
    run = cached_scenario("clean", n_days=BENCH_DAYS)
    result = run_once(benchmark, lambda: figure7(run))
    print("\n" + result.render())
    states = result.main_states
    # Paper: four main states (12,94), (17,84), (24,70), (31,56) on the
    # cold-humid -> hot-dry diagonal.
    assert 3 <= len(states) <= 6
    assert states[0][0] < 18 and states[0][1] > 80  # cold & humid
    assert states[-1][0] > 27 and states[-1][1] < 70  # hot & dry
    temps = [s[0] for s in states]
    hums = [s[1] for s in states]
    assert temps == sorted(temps)
    assert hums == sorted(hums, reverse=True)
