"""A8 — performance: pipeline throughput and hot-loop costs.

These are conventional pytest-benchmark micro-benchmarks (multiple
rounds) rather than one-shot experiment reruns: the paper's procedure is
meant to run *on-the-fly* on a collector node, so per-window cost is a
first-class result.
"""

import numpy as np
import pytest

from repro import DetectionPipeline, PipelineConfig
from repro.core.clustering import OnlineStateClusterer
from repro.core.online_hmm import OnlineHMM
from repro.sensornet import ObservationWindow, SensorMessage


def build_windows(n_windows=200, n_sensors=10, seed=0):
    rng = np.random.default_rng(seed)
    windows = []
    for index in range(1, n_windows + 1):
        phase = 2 * np.pi * index / 24.0
        truth = np.array([21.0 - 10 * np.cos(phase), 75.0 + 20 * np.cos(phase)])
        messages = tuple(
            SensorMessage(
                sensor_id=s,
                timestamp=(index - 1) * 60.0 + 1.0,
                attributes=tuple(truth + rng.normal(0, 0.35, 2)),
            )
            for s in range(n_sensors)
        )
        windows.append(
            ObservationWindow(
                index=index,
                start_minutes=(index - 1) * 60.0,
                end_minutes=index * 60.0,
                messages=messages,
            )
        )
    return windows


def test_pipeline_window_throughput(benchmark):
    windows = build_windows()

    def run():
        pipeline = DetectionPipeline(PipelineConfig())
        for window in windows:
            pipeline.process_window(window)
        return pipeline

    pipeline = benchmark(run)
    per_window_us = benchmark.stats["mean"] / len(windows) * 1e6
    print(f"\npipeline: {per_window_us:.0f} us/window over {len(windows)} windows")
    # Budget history: the scalar hot path ran ~614 us/window; the
    # vectorized kernels brought it to ~190 us/window (BENCH_pipeline.json).
    # 1 ms/window leaves ~5x headroom for slow CI runners while still
    # catching a return to per-state Python loops.
    assert benchmark.stats["mean"] / len(windows) < 0.001
    assert pipeline.n_windows == len(windows)


def test_online_hmm_update_cost(benchmark):
    rng = np.random.default_rng(1)
    pairs = [(int(rng.integers(0, 6)), int(rng.integers(0, 8))) for _ in range(1000)]

    def run():
        hmm = OnlineHMM()
        for state, symbol in pairs:
            hmm.observe(state, symbol)
        return hmm

    hmm = benchmark(run)
    assert hmm.n_updates == 1000


def test_clusterer_update_cost(benchmark):
    rng = np.random.default_rng(2)
    batches = [rng.normal([20.0, 70.0], 5.0, size=(10, 2)) for _ in range(200)]

    def run():
        clusterer = OnlineStateClusterer(
            initial_vectors=[np.array([20.0, 70.0])],
            alpha=0.1,
            spawn_threshold=10.0,
            merge_threshold=5.0,
        )
        for batch in batches:
            clusterer.update(batch)
        return clusterer

    clusterer = benchmark(run)
    assert clusterer.n_states >= 1
