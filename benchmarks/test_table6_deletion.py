"""F10/T6 — Fig. 10 + Table 6: Dynamic Deletion attack on B^CO."""

from conftest import BENCH_DAYS, run_once

from repro.core.classification import AnomalyType
from repro.core.orthogonality import analyze_orthogonality
from repro.experiments import cached_scenario, table6


def test_table6_dynamic_deletion(benchmark):
    run = cached_scenario("deletion", n_days=BENCH_DAYS)
    result = run_once(benchmark, lambda: table6(run))
    print("\n" + result.render())

    # Paper: row probabilities are not orthogonal — the deleted state's
    # row collapses onto the hold state's symbol with ~0.999.
    assert result.anomaly_type is AnomalyType.DYNAMIC_DELETION
    report = analyze_orthogonality(result.b_co.denoised(0.2))
    assert not report.rows_orthogonal
    assert report.max_row_cross > 0.7

    # Every compromised sensor was detected (tracked).
    assert set(result.compromised_sensors) <= set(result.tracked_sensors)
