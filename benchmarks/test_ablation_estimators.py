"""A9 — ablation: the paper's estimator vs general online EM ([10])."""

from conftest import run_once

from repro.experiments import estimator_comparison


def test_estimator_comparison(benchmark):
    result = run_once(benchmark, lambda: estimator_comparison(n_days=10))
    print("\n" + result.render())
    masses = {row[0]: float(row[2]) for row in result.rows}
    paper = masses["paper (redundancy-aware)"]
    general = masses["general online EM [10]"]
    # The paper's §2 argument, quantified: exposing the hidden state via
    # redundancy yields an (almost) perfect state correspondence, while
    # blind online EM over the same data recovers far less structure —
    # even scored with a best-case state assignment.
    assert paper > 0.95
    assert paper > general + 0.2
