"""A3 — ablation: the majority assumption's breaking point.

The paper assumes "a majority of sensors have not been compromised
(yet)".  This sweep raises the compromised fraction under a Dynamic
Deletion until the attack wins the majority and the methodology's view
inverts — the expected failure mode, reproduced on purpose.
"""

from conftest import run_once

from repro.experiments import compromised_fraction_sweep


def test_compromised_fraction_sweep(benchmark):
    result = run_once(benchmark, lambda: compromised_fraction_sweep(n_days=14))
    print("\n" + result.render())
    verdicts = {row[0]: row[2] for row in result.rows}
    # With a clear minority compromised the deletion is classified.
    assert verdicts["0.3"] == "deletion"
    assert verdicts["0.4"] == "deletion"
    # Beyond majority the attack controls the "correct" view: the
    # deletion signature disappears (the paper's stated limit).
    assert verdicts["0.6"] != "deletion"
