"""A1 — ablation: observation window size w (Table 1 discussion)."""

from conftest import run_once

from repro.experiments import window_size_sweep


def test_window_size_sweep(benchmark):
    result = run_once(benchmark, lambda: window_size_sweep(n_days=10))
    print("\n" + result.render())
    rows = {row[0]: row for row in result.rows}
    # The paper chose w=12 (one hour): enough readings for statistical
    # significance.  Very small windows are noisier (more false tracks
    # or alarms); very large windows smear the diurnal dynamics into
    # fewer model states.
    assert set(rows) == {6, 12, 24, 48}
    paper_states = rows[12][2]
    assert 3 <= paper_states <= 7
    assert rows[48][2] <= paper_states + 1
