"""A6 — ablation: the paper's method vs the baseline detectors."""

from conftest import run_once

from repro.experiments import baseline_comparison


def test_baseline_comparison(benchmark):
    result = run_once(benchmark, lambda: baseline_comparison(n_days=14))
    print("\n" + result.render())
    rows = {row[0]: row for row in result.rows}

    # Range checking is blind to the in-range attacks (§4.2's point).
    assert rows["deletion"][1] == "blind"
    assert rows["creation"][1] == "blind"

    # The paper's method types every scenario correctly.
    assert "stuck_at" in rows["stuck-at"][5]
    assert "deletion" in rows["deletion"][5]
    assert "creation" in rows["creation"][5]

    # The majority-vote baseline detects culprits but offers no type —
    # its column is a sensor list, never a §3.3 label.
    for label in ("stuck-at", "deletion", "creation"):
        assert "flags" in rows[label][2]
