"""T2/T3 — Tables 2 & 3: B^CO / B^CE for faulty sensor 6 → stuck-at."""

import numpy as np
from conftest import BENCH_DAYS, run_once

from repro.core.classification import AnomalyType
from repro.experiments import cached_scenario, table2_3


def test_tables2_3_stuck_at_classification(benchmark):
    run = cached_scenario("faulty", n_days=BENCH_DAYS)
    result = run_once(benchmark, lambda: table2_3(run))
    print("\n" + result.render())

    # Paper: B^CO approximately orthogonal (single-sensor fault barely
    # perturbs the observable dynamics; Table 2 leaks at most ~0.35).
    b_co = result.b_co
    common = [s for s in b_co.state_ids if s in b_co.symbol_ids]
    for state_id in common:
        row = b_co.state_ids.index(state_id)
        col = b_co.symbol_ids.index(state_id)
        assert b_co.matrix[row, col] >= 0.5

    # Paper: B^CE has (approximately) one all-ones column — the stuck
    # state (15, 1) — and the sensor is classified stuck-at.
    assert result.diagnosis.anomaly_type is AnomalyType.STUCK_AT
    stuck_vector = result.diagnosis.evidence.get("stuck_vector")
    assert stuck_vector is not None
    assert np.allclose(stuck_vector, [15.0, 1.0], atol=3.0)
