"""Resilience — recovery after a collector crash mid-deployment.

Measures the cost of crash/restore on a GDI-style trace: how many
windows are rolled back (windows-to-recovery) and whether the restored
run's final diagnoses agree with an uninterrupted run over the same
trace.  The checkpoint round-trip is exact, so the only loss is the
windows between the last checkpoint and the crash.
"""

import json

from conftest import run_once

from repro import DetectionPipeline, PipelineConfig
from repro.experiments import cached_scenario
from repro.resilience import restore, snapshot

#: Window index at which the collector "crashes".
CRASH_WINDOW = 150
#: Checkpoint cadence in windows.
CHECKPOINT_EVERY = 12


def crash_and_recover(windows, config):
    """Run the trace with a crash at CRASH_WINDOW, restoring from the
    latest periodic checkpoint; returns (pipeline, windows_rolled_back)."""
    pipeline = DetectionPipeline(config)
    checkpoint = json.dumps(snapshot(pipeline))
    checkpoint_at = 0
    rolled_back = 0
    for i, window in enumerate(windows):
        if i == CRASH_WINDOW:
            rolled_back = pipeline.n_windows - checkpoint_at
            pipeline = restore(json.loads(checkpoint))
            # The restored collector replays nothing: the crash window
            # itself and everything since the checkpoint is gone, so the
            # pipeline continues from the next incoming window.
            continue
        pipeline.process_window(window)
        if pipeline.n_windows % CHECKPOINT_EVERY == 0:
            checkpoint = json.dumps(snapshot(pipeline))
            checkpoint_at = pipeline.n_windows
    return pipeline, rolled_back


def test_recovery_after_crash(benchmark, bench_days):
    run = cached_scenario("faulty", n_days=bench_days)
    windows = run.windows()
    config = run.config

    baseline = DetectionPipeline(config)
    for window in windows:
        baseline.process_window(window)

    recovered, rolled_back = run_once(
        benchmark, lambda: crash_and_recover(windows, config)
    )

    # Windows-to-recovery is bounded by the checkpoint cadence (plus the
    # crash window itself, which no checkpoint can save).
    assert 0 <= rolled_back <= CHECKPOINT_EVERY
    lost = rolled_back + 1
    print(
        f"\ncrash at window {CRASH_WINDOW}: rolled back {rolled_back} "
        f"windows ({lost} of {len(windows)} lost, "
        f"{lost / len(windows):.1%} of the trace)"
    )

    # Diagnosis agreement: losing one checkpoint interval must not
    # change what the deployment concludes about any sensor.
    expected = {
        sensor_id: diagnosis.anomaly_type
        for sensor_id, diagnosis in baseline.diagnose_all().items()
    }
    actual = {
        sensor_id: diagnosis.anomaly_type
        for sensor_id, diagnosis in recovered.diagnose_all().items()
    }
    assert actual == expected
    assert (
        recovered.system_diagnosis().anomaly_type
        is baseline.system_diagnosis().anomaly_type
    )
    print(
        "diagnoses after recovery agree with the uninterrupted run: "
        + ", ".join(
            f"sensor {sensor_id}={anomaly.value}"
            for sensor_id, anomaly in sorted(actual.items())
        )
    )
