"""Shared benchmark configuration.

Every benchmark regenerates one paper artefact (DESIGN.md §4 maps ids to
targets) and prints its plain-text rendering, so the captured output of
``pytest benchmarks/ --benchmark-only`` reads as the reproduced paper
evaluation.  Scenario runs are shared through the process-wide cache in
:mod:`repro.experiments`.
"""

from __future__ import annotations

import pytest

#: Deployment length used by the benchmark scenarios (the paper uses the
#: full 31-day July; 21 days keeps the full harness under a few minutes
#: while preserving every result shape).
BENCH_DAYS = 21


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def bench_days() -> int:
    return BENCH_DAYS
