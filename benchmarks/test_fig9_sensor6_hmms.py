"""F9 — Figure 9: the two HMMs (M_CO, M_CE) learned for faulty sensor 6."""

import numpy as np
from conftest import BENCH_DAYS, run_once

from repro.experiments import cached_scenario, figure9


def test_figure9_hmms_for_sensor6(benchmark):
    run = cached_scenario("faulty", n_days=BENCH_DAYS)
    result = run_once(benchmark, lambda: figure9(run, sensor_id=6))
    print("\n" + result.render())
    # M_CO: hidden correct states and observable symbols share the
    # environment's main states; the matrix is diagonally dominant.
    common = [s for s in result.b_co.state_ids if s in result.b_co.symbol_ids]
    assert len(common) >= 3
    # M_CE: the track's emission concentrates on the stuck state.
    denoised = result.b_ce.without_symbol(-1).denoised(0.2)
    column_minima = denoised.matrix.min(axis=0)
    assert column_minima.max() > 0.5
    # The A matrix of M_CO stays row-stochastic.
    assert np.allclose(result.a_co.sum(axis=1), 1.0)
